// Package wal is the per-stream write-ahead log behind influtrackd's
// exact crash recovery: a segmented, CRC32C-framed append log of
// post-intern ingest chunks, written *before* the serving layer
// acknowledges a record with 200 OK.
//
// Checkpoints alone make durability periodic: a kill -9 between
// checkpoints silently loses every record acknowledged since the last
// save. The WAL closes that window the way replayable-ingest systems do
// — the stream is a recoverable sequence of edge updates (the framing
// of Yang et al., arXiv:1602.04490), so recovery is checkpoint + replay
// of the log tail past the checkpoint's watermark, reconstructing the
// exact pre-crash tracker state.
//
// # Layout
//
// A Log owns one directory. It holds a `meta` file carrying the log's
// random identity (so a checkpoint watermark can prove it refers to
// *this* log and not a copy restored from another machine) and
// monotonically numbered segment files `seg-%016d.wal`. Each segment is
// a sequence of frames:
//
//	[u32 payload length][u32 CRC32C(payload)][payload]
//
// little-endian, CRC32 with the Castagnoli polynomial. Frames never
// span segments. A torn final frame (short header, short payload, or
// CRC mismatch — what a crash mid-write leaves behind) is detected on
// open and truncated away; everything before it is intact by
// construction, because frames are appended with a single write.
//
// # Durability model
//
// Append issues the write(2) immediately — frames are never buffered in
// user space — so an appended record survives process death (kill -9)
// under every fsync policy: the page cache belongs to the kernel, not
// the process. The fsync policy only decides when data reaches the
// *disk*, i.e. what a machine crash or power loss can take:
//
//   - FsyncAlways: Commit fsyncs before returning (batched — concurrent
//     committers share one fsync, classic group commit). 200 OK then
//     means "on disk".
//   - FsyncInterval (default): a background goroutine fsyncs every
//     FsyncEvery. 200 OK means "will be on disk within the interval";
//     power loss can cost up to one interval of acknowledged records,
//     process crashes cost nothing.
//   - FsyncNone: never fsync (the OS writes back on its own schedule).
//     Still exact under kill -9; fastest; weakest under power loss.
//
// A failed fsync poisons the log (Commit keeps failing): after EIO the
// kernel may have dropped the dirty pages, so retrying and reporting
// success would be a lie.
package wal

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"runtime"
	"time"

	"tdnstream/internal/fault"
)

// Fsync policies: when appended frames are forced to disk. See the
// package comment for the durability each buys.
const (
	FsyncAlways   = "always"
	FsyncInterval = "interval"
	FsyncNone     = "none"
)

// ValidFsyncPolicy reports whether s names a supported fsync policy
// ("" means the default, FsyncInterval).
func ValidFsyncPolicy(s string) bool {
	switch s {
	case "", FsyncAlways, FsyncInterval, FsyncNone:
		return true
	}
	return false
}

// Options parameterizes a Log.
type Options struct {
	// Fsync is the durability policy (default FsyncInterval).
	Fsync string
	// FsyncEvery is the FsyncInterval cadence (default 100ms).
	FsyncEvery time.Duration
	// SegmentBytes rotates to a new segment once the active one reaches
	// this size (default 64 MiB). Rotation is what makes truncation
	// cheap: checkpoint-covered history is dropped whole segments at a
	// time. A single oversized record still fits — frames may exceed
	// SegmentBytes; rotation happens between appends, never inside one.
	SegmentBytes int64
	// FS is the filesystem seam every file operation goes through
	// (default the real OS). Fault-injection tests and chaos runs pass
	// a fault.Injector here; production pays only an interface call.
	FS fault.FS
	// CommitShards splits FsyncAlways commit waiters across this many
	// wait queues (shard = token mod CommitShards): waiters park per
	// shard and only shard leaders contend on the global fsync round,
	// cutting the single-condition-variable wakeup storm under many
	// concurrent ingesters. 0 picks min(GOMAXPROCS, 16); 1 restores a
	// single queue. Ignored unless Fsync is FsyncAlways.
	CommitShards int
}

func (o Options) withDefaults() (Options, error) {
	if o.Fsync == "" {
		o.Fsync = FsyncInterval
	}
	if !ValidFsyncPolicy(o.Fsync) {
		return o, fmt.Errorf("wal: unknown fsync policy %q (want %s, %s or %s)",
			o.Fsync, FsyncAlways, FsyncInterval, FsyncNone)
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.FS == nil {
		o.FS = fault.OS()
	}
	if o.CommitShards < 0 {
		return o, fmt.Errorf("wal: negative CommitShards %d", o.CommitShards)
	}
	if o.CommitShards == 0 {
		o.CommitShards = runtime.GOMAXPROCS(0)
		if o.CommitShards > 16 {
			o.CommitShards = 16
		}
	}
	return o, nil
}

// Pos addresses a frame boundary: byte offset Off into segment Seg.
// The positions the Log hands out (from Append and ReadFrom) are always
// boundaries; a checkpoint stores the Pos *after* the last chunk it
// covers and replay resumes there.
type Pos struct {
	Seg uint64
	Off int64
}

// IsZero reports the genesis position (start of segment 0).
func (p Pos) IsZero() bool { return p.Seg == 0 && p.Off == 0 }

// Less orders positions by (segment, offset).
func (p Pos) Less(q Pos) bool {
	if p.Seg != q.Seg {
		return p.Seg < q.Seg
	}
	return p.Off < q.Off
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Seg, p.Off) }

// Token orders appends for Commit: Commit(t) returns once every append
// up to and including t is durable per the fsync policy.
type Token uint64

// Stats is a Log's observability snapshot.
type Stats struct {
	Segments   int    // live segment files
	Bytes      int64  // total bytes across live segments
	Appends    uint64 // frames appended since open
	Fsyncs     uint64 // fsync(2) calls issued since open
	FsyncNanos uint64 // cumulative wall time inside fsync batches (device time, no queue wait)
}

// ErrTruncated reports a ReadFrom position that precedes the log's
// earliest retained segment — the history there has been truncated away
// (or the directory was tampered with), so an exact replay from that
// position is impossible.
var ErrTruncated = errors.New("wal: position precedes the earliest retained segment")

// frameHeaderSize is the fixed per-frame overhead: u32 length + u32 CRC.
const frameHeaderSize = 8

// maxFrameBytes bounds a single frame payload (1 GiB): a length field
// larger than this is treated as tail corruption, not an allocation
// request.
const maxFrameBytes = 1 << 30

// castagnoli is the CRC32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// newLogID mints a random 128-bit log identity.
func newLogID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("wal: mint log id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}
