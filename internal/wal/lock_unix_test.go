//go:build unix

package wal

import "testing"

// TestDoubleOpenRefused: two live Logs over one directory would
// truncate each other's tails mid-write; the flock refuses the second
// opener while the first lives and admits it once the first closes.
func TestDoubleOpenRefused(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]byte("held")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Fsync: FsyncNone}); err == nil {
		t.Fatal("second live opener was admitted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	got, _ := collect(t, l2, Pos{})
	if len(got) != 1 || got[0] != "held" {
		t.Fatalf("reopen lost the record: %v", got)
	}
	l2.Close()
}
