//go:build unix

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory lock on dir's lock file, refusing
// a second live Log over the same directory: two writers would truncate
// each other's "torn tails" mid-write and interleave appends — the
// acked-record loss the WAL exists to prevent. The lock is a kernel
// flock, so a killed process (the crash the log recovers from) releases
// it automatically; only a genuinely live second opener is refused.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %s is already open in another live process (second daemon on the same wal dir?): %w", dir, err)
	}
	return f, nil
}
