package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"tdnstream/internal/ids"
	"tdnstream/internal/stream"
)

// collect replays the log from pos into a slice of payload copies.
func collect(t *testing.T, l *Log, pos Pos) ([]string, []Pos) {
	t.Helper()
	var payloads []string
	var ends []Pos
	if err := l.ReadFrom(pos, func(p []byte, end Pos) error {
		payloads = append(payloads, string(p))
		ends = append(ends, end)
		return nil
	}); err != nil {
		t.Fatalf("ReadFrom(%v): %v", pos, err)
	}
	return payloads, ends
}

func TestAppendReadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	var wantEnds []Pos
	for i := 0; i < 100; i++ {
		p := fmt.Sprintf("record-%03d", i)
		pos, tok, err := l.Append([]byte(p))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(tok); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
		wantEnds = append(wantEnds, pos)
	}
	got, gotEnds := collect(t, l, Pos{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch: got %d records, want %d", len(got), len(want))
	}
	if !reflect.DeepEqual(gotEnds, wantEnds) {
		t.Fatalf("replay end positions do not match append positions")
	}
	// Resume from a mid-log watermark: exactly the suffix comes back.
	got, _ = collect(t, l, wantEnds[49])
	if !reflect.DeepEqual(got, want[50:]) {
		t.Fatalf("watermark resume: got %d records, want %d", len(got), 50)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same records, same identity, appends continue at the tail.
	l2, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.ID() == "" || l2.ID() != l.ID() {
		t.Fatalf("identity not persisted across reopen: %q vs %q", l2.ID(), l.ID())
	}
	got, _ = collect(t, l2, Pos{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopen replay mismatch")
	}
	if _, _, err := l2.Append([]byte("after-reopen")); err != nil {
		t.Fatal(err)
	}
	got, _ = collect(t, l2, Pos{})
	if got[len(got)-1] != "after-reopen" {
		t.Fatalf("append after reopen missing from replay")
	}
}

func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every ~2 records rotate.
	l, err := Open(dir, Options{Fsync: FsyncNone, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var ends []Pos
	for i := 0; i < 20; i++ {
		pos, _, err := l.Append([]byte(fmt.Sprintf("rotating-record-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, pos)
	}
	if end := l.End(); end.Seg < 3 {
		t.Fatalf("expected several segments, active is %d", end.Seg)
	}
	st := l.Stats()
	if st.Segments < 3 || st.Appends != 20 {
		t.Fatalf("stats: %+v", st)
	}

	// Truncate everything wholly covered by the 10th record's watermark.
	mark := ends[9]
	removed, err := l.TruncateBefore(mark)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatalf("expected truncation to remove segments (mark %v)", mark)
	}
	if start := l.Start(); start.Seg != mark.Seg {
		t.Fatalf("start %v, want segment %d", start, mark.Seg)
	}
	// The watermark's own segment survives, so replay from the mark is
	// exact; replay from genesis now reports truncated history.
	got, _ := collect(t, l, mark)
	if len(got) != 10 || got[0] != "rotating-record-010" {
		t.Fatalf("post-truncate replay from mark: %v", got)
	}
	if err := l.ReadFrom(Pos{}, func([]byte, Pos) error { return nil }); !errors.Is(err, ErrTruncated) {
		t.Fatalf("replay before the truncation point: err = %v, want ErrTruncated", err)
	}
	if st := l.Stats(); st.Bytes <= 0 {
		t.Fatalf("bytes gauge after truncate: %+v", st)
	}
	// Truncating again at the same mark is a no-op.
	if removed, err := l.TruncateBefore(mark); err != nil || removed != 0 {
		t.Fatalf("idempotent truncate: removed %d, err %v", removed, err)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	end := l.End()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "seg-0000000000000000.wal")

	// A crash mid-write leaves a partial final frame: simulate by
	// appending a torn header + a few payload bytes.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 0, 0, 0, 1, 2, 3, 4, 'p', 'a', 'r'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := collect(t, l2, Pos{})
	if len(got) != 5 {
		t.Fatalf("after torn tail: %d records, want 5", len(got))
	}
	if e := l2.End(); e != end {
		t.Fatalf("torn tail not truncated: end %v, want %v", e, end)
	}
	// The log is writable again and the new record follows cleanly.
	if _, _, err := l2.Append([]byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	got, _ = collect(t, l2, Pos{})
	if len(got) != 6 || got[5] != "post-crash" {
		t.Fatalf("append after torn-tail recovery: %v", got)
	}
	l2.Close()
}

func TestCorruptPayloadStopsReplayCleanly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	var ends []Pos
	for i := 0; i < 4; i++ {
		pos, _, err := l.Append([]byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, pos)
	}
	l.Close()
	seg := filepath.Join(dir, "seg-0000000000000000.wal")

	// Flip one byte inside the final record's payload: the CRC catches
	// it and replay stops at the last good boundary.
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, _ := collect(t, l2, Pos{})
	if len(got) != 3 {
		t.Fatalf("replay past a corrupt CRC: %d records, want 3", len(got))
	}
	if e := l2.End(); e != ends[2] {
		t.Fatalf("end after CRC truncation: %v, want %v", e, ends[2])
	}
}

func TestGroupCommitAlways(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_, tok, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Error(err)
					return
				}
				if err := l.Commit(tok); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != writers*per {
		t.Fatalf("appends %d, want %d", st.Appends, writers*per)
	}
	if st.Fsyncs == 0 || st.Fsyncs > st.Appends {
		t.Fatalf("fsyncs %d out of range (appends %d)", st.Fsyncs, st.Appends)
	}
	got, _ := collect(t, l, Pos{})
	if len(got) != writers*per {
		t.Fatalf("replayed %d records, want %d", len(got), writers*per)
	}
}

func TestResetWipesHistoryAndIdentity(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncNone, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		if _, _, err := l.Append([]byte(fmt.Sprintf("old-history-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	oldID := l.ID()
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.ID() == oldID {
		t.Fatal("reset kept the old log identity")
	}
	if got, _ := collect(t, l, Pos{}); len(got) != 0 {
		t.Fatalf("reset left %d records", len(got))
	}
	if end := l.End(); !end.IsZero() {
		t.Fatalf("reset end %v, want genesis", end)
	}
	if st := l.Stats(); st.Bytes != 0 {
		t.Fatalf("reset bytes %d, want 0", st.Bytes)
	}
	if _, _, err := l.Append([]byte("new-history")); err != nil {
		t.Fatal(err)
	}
	if got, _ := collect(t, l, Pos{}); len(got) != 1 || got[0] != "new-history" {
		t.Fatalf("post-reset replay: %v", got)
	}
}

func TestRemoveDeletesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "stream")
	l, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := l.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("directory survives Remove: %v", err)
	}
}

func TestFsyncIntervalAndNoneCommitImmediately(t *testing.T) {
	for _, policy := range []string{FsyncInterval, FsyncNone} {
		dir := t.TempDir()
		l, err := Open(dir, Options{Fsync: policy, FsyncEvery: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		_, tok, err := l.Append([]byte("quick"))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(tok); err != nil {
			t.Fatalf("policy %s: commit: %v", policy, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("policy %s: close: %v", policy, err)
		}
	}
}

func TestBadFsyncPolicyRejected(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{Fsync: "sometimes"}); err == nil {
		t.Fatal("bad fsync policy accepted")
	}
}

func TestRecordCodecRoundtrip(t *testing.T) {
	rec := Record{
		DictBase: 7,
		Labels:   []string{"alice", "bob", "cañón", ""},
		Rows: []stream.Interaction{
			{Src: 0, Dst: 10, T: -5},
			{Src: 4_000_000_000, Dst: 3, T: 1 << 40},
			{Src: 8, Dst: 9, T: 0},
		},
	}
	buf := rec.AppendEncode(nil)
	got, err := DecodeRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, rec)
	}
	// Empty record.
	empty := Record{Rows: []stream.Interaction{}, Labels: []string{}}
	got, err = DecodeRecord(empty.AppendEncode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 0 || len(got.Labels) != 0 {
		t.Fatalf("empty roundtrip: %+v", got)
	}
	// Truncations and garbage must error, never panic or over-allocate.
	for i := 0; i < len(buf); i++ {
		if _, err := DecodeRecord(buf[:i]); err == nil {
			t.Fatalf("truncation at %d decoded without error", i)
		}
	}
	if _, err := DecodeRecord([]byte{recordKindChunk, 0, 0xff, 0xff, 0xff, 0xff, 0x0f}); err == nil {
		t.Fatal("absurd label count decoded without error")
	}
	if _, err := DecodeRecord([]byte{99}); err == nil {
		t.Fatal("unknown record kind decoded without error")
	}
	_ = ids.NodeID(0) // keep the import honest about what Rows carry
}
