//go:build !unix

package wal

import "os"

// lockDir is a no-op on platforms without flock semantics: the
// double-open guard degrades to "don't run two daemons on one wal dir"
// being an operator responsibility there.
func lockDir(dir string) (*os.File, error) { return nil, nil }
