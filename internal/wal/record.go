package wal

import (
	"encoding/binary"
	"fmt"

	"tdnstream/internal/ids"
	"tdnstream/internal/stream"
)

// Kind tags a record payload's first byte.
type Kind byte

const (
	// KindChunk is one post-intern ingest chunk (Record).
	KindChunk Kind = 1
	// KindRestore is an in-place checkpoint restore, logged *in line*
	// with the chunks: the payload is the restored checkpoint envelope
	// itself. Replay applies chunks to the evolving state and, on
	// hitting a restore marker, swaps the embedded state in — exactly
	// the sequence the live stream executed — so even "restore, then
	// more ingest, then crash" recovers to the precise pre-crash state
	// without any checkpoint file written in between.
	KindRestore Kind = 2
)

const recordKindChunk = byte(KindChunk)

// PayloadKind reports a record payload's kind tag.
func PayloadKind(b []byte) (Kind, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("wal: empty record")
	}
	switch k := Kind(b[0]); k {
	case KindChunk, KindRestore:
		return k, nil
	default:
		return 0, fmt.Errorf("wal: unknown record kind %d", b[0])
	}
}

// AppendEncodeRestore appends a restore marker's wire form (kind byte +
// the checkpoint envelope bytes) to buf.
func AppendEncodeRestore(buf, envelope []byte) []byte {
	buf = append(buf, byte(KindRestore))
	return append(buf, envelope...)
}

// DecodeRestore returns the checkpoint envelope a restore marker
// carries. The returned slice aliases b.
func DecodeRestore(b []byte) ([]byte, error) {
	if len(b) == 0 || Kind(b[0]) != KindRestore {
		return nil, fmt.Errorf("wal: not a restore record")
	}
	return b[1:], nil
}

// Record is one logged ingest chunk: the interned interaction rows plus
// the label-dictionary delta that interning produced, so replay
// re-interns identically. DictBase is the dictionary length the delta
// starts at — Labels[i] is the name of NodeID DictBase+i. The delta may
// begin before the replayer's current dictionary length (labels
// interned by chunks that were refused at the queue still occupy their
// ids); apply verifies the overlap instead of re-assigning it.
//
// Rows reference NodeIDs strictly below DictBase+len(Labels), because
// the delta is captured after the chunk's labels are interned and
// dictionaries only grow.
type Record struct {
	DictBase int
	Labels   []string
	Rows     []stream.Interaction
}

// AppendEncode appends the record's wire form to buf and returns the
// extended slice. Layout (all varints):
//
//	u8   kind
//	uv   dictBase
//	uv   len(labels), then per label: uv byte-length + bytes
//	uv   len(rows),   then per row:   uv src, uv dst, v t
func (r *Record) AppendEncode(buf []byte) []byte {
	buf = append(buf, recordKindChunk)
	buf = binary.AppendUvarint(buf, uint64(r.DictBase))
	buf = binary.AppendUvarint(buf, uint64(len(r.Labels)))
	for _, l := range r.Labels {
		buf = binary.AppendUvarint(buf, uint64(len(l)))
		buf = append(buf, l...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Rows)))
	for _, row := range r.Rows {
		buf = binary.AppendUvarint(buf, uint64(row.Src))
		buf = binary.AppendUvarint(buf, uint64(row.Dst))
		buf = binary.AppendVarint(buf, row.T)
	}
	return buf
}

// DecodeRecord parses a record payload. It validates structure (kind,
// lengths, id bounds) — frame-level integrity is the CRC's job.
func DecodeRecord(b []byte) (Record, error) {
	var r Record
	if len(b) == 0 || b[0] != recordKindChunk {
		return r, fmt.Errorf("wal: unknown record kind")
	}
	b = b[1:]
	u, b, err := takeUvarint(b)
	if err != nil {
		return r, err
	}
	r.DictBase = int(u)
	nLabels, b, err := takeUvarint(b)
	if err != nil {
		return r, err
	}
	if nLabels > uint64(len(b)) { // each label costs ≥ 1 byte of wire
		return r, fmt.Errorf("wal: record label count %d exceeds payload", nLabels)
	}
	r.Labels = make([]string, nLabels)
	for i := range r.Labels {
		n, rest, err := takeUvarint(b)
		if err != nil {
			return r, err
		}
		if n > uint64(len(rest)) {
			return r, fmt.Errorf("wal: record label length %d exceeds payload", n)
		}
		r.Labels[i] = string(rest[:n])
		b = rest[n:]
	}
	nRows, b, err := takeUvarint(b)
	if err != nil {
		return r, err
	}
	if nRows > uint64(len(b)) { // each row costs ≥ 3 bytes of wire
		return r, fmt.Errorf("wal: record row count %d exceeds payload", nRows)
	}
	r.Rows = make([]stream.Interaction, nRows)
	for i := range r.Rows {
		var src, dst uint64
		var t int64
		if src, b, err = takeUvarint(b); err != nil {
			return r, err
		}
		if dst, b, err = takeUvarint(b); err != nil {
			return r, err
		}
		if t, b, err = takeVarint(b); err != nil {
			return r, err
		}
		if src > 0xffffffff || dst > 0xffffffff {
			return r, fmt.Errorf("wal: record node id out of range")
		}
		r.Rows[i] = stream.Interaction{Src: ids.NodeID(src), Dst: ids.NodeID(dst), T: t}
	}
	if len(b) != 0 {
		return r, fmt.Errorf("wal: %d trailing bytes after record", len(b))
	}
	return r, nil
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wal: truncated varint in record")
	}
	return v, b[n:], nil
}

func takeVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wal: truncated varint in record")
	}
	return v, b[n:], nil
}
