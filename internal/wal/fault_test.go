package wal

import (
	"errors"
	"fmt"
	"sync"
	"syscall"
	"testing"

	"tdnstream/internal/fault"
)

// replayAll reopens dir with a clean filesystem and returns every
// replayed payload in order.
func replayAll(t *testing.T, dir string) [][]byte {
	t.Helper()
	l, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	var out [][]byte
	err = l.ReadFrom(l.Start(), func(p []byte, _ Pos) error {
		cp := make([]byte, len(p))
		copy(cp, p)
		out = append(out, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func payloadFor(i int) []byte {
	// 24 bytes, distinct per index: frame = 32 bytes.
	return []byte(fmt.Sprintf("record-%05d-%010d", i, i*i))
}

// TestTornWriteEveryFrameBoundary tears the log at every frame of a
// 100-record history — a short write of 1..31 bytes into the i-th
// frame — and proves replay recovers exactly the i records before the
// tear, byte-identical, with the garbage truncated away.
func TestTornWriteEveryFrameBoundary(t *testing.T) {
	const records = 100
	for i := 0; i < records; i++ {
		shortBy := i%31 + 1 // frames are 32 bytes; tear at every offset depth over the sweep
		dir := t.TempDir()
		inj := fault.NewInjector(nil, 1)
		inj.Add(fault.Rule{Op: fault.OpWrite, Path: "seg-", After: uint64(i), Count: 1, ShortBy: shortBy})
		l, err := Open(dir, Options{Fsync: FsyncNone, FS: inj})
		if err != nil {
			t.Fatalf("i=%d open: %v", i, err)
		}
		sawErr := false
		for j := 0; j < records; j++ {
			_, _, err := l.Append(payloadFor(j))
			if err != nil {
				sawErr = true
				if j < i {
					t.Fatalf("i=%d: append %d failed before the scheduled tear: %v", i, j, err)
				}
			} else if j >= i {
				t.Fatalf("i=%d: append %d succeeded past the tear (poison not sticky)", i, j)
			}
		}
		if !sawErr {
			t.Fatalf("i=%d: tear never fired", i)
		}
		l.Close() // error expected under poison; replay is the oracle
		got := replayAll(t, dir)
		if len(got) != i {
			t.Fatalf("i=%d: replayed %d records, want %d", i, len(got), i)
		}
		for j, p := range got {
			if string(p) != string(payloadFor(j)) {
				t.Fatalf("i=%d: record %d corrupted: %q", i, j, p)
			}
		}
	}
}

// TestRotationUnderENOSPC fails segment creation with ENOSPC and
// verifies the log neither wedges nor gaps: appends that hit the failed
// rotation error out cleanly, the log state is untouched, and once
// space returns the rotation succeeds and every acknowledged append
// replays in order.
func TestRotationUnderENOSPC(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(nil, 1)
	// Fires on segment creations after the initial seg-0 open: the
	// first two rotations fail.
	inj.Add(fault.Rule{Op: fault.OpOpen, Path: "seg-", After: 1, Count: 2, Err: syscall.ENOSPC})
	l, err := Open(dir, Options{Fsync: FsyncNone, FS: inj, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var acked [][]byte
	failures := 0
	for i := 0; i < 20; i++ {
		p := payloadFor(i)
		if _, _, err := l.Append(p); err != nil {
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("append %d: %v, want ENOSPC", i, err)
			}
			failures++
			continue
		}
		acked = append(acked, p)
	}
	if failures != 2 {
		t.Fatalf("%d rotation failures, want 2", failures)
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("no rotation ever succeeded: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got := replayAll(t, dir)
	if len(got) != len(acked) {
		t.Fatalf("replayed %d records, want %d", len(got), len(acked))
	}
	for i := range got {
		if string(got[i]) != string(acked[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestFsyncEIONeverAcksLostRecord hammers an FsyncAlways log from many
// goroutines while fsync starts failing, then proves the core promise:
// every record whose Commit returned nil is present after replay.
func TestFsyncEIONeverAcksLostRecord(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(nil, 1)
	inj.Add(fault.Rule{Op: fault.OpSync, After: 3, Err: syscall.EIO})
	l, err := Open(dir, Options{Fsync: FsyncAlways, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 16, 20
	var mu sync.Mutex
	acked := map[string]bool{}
	failed := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p := []byte(fmt.Sprintf("w%02d-r%03d", w, i))
				_, tok, err := l.Append(p)
				if err != nil {
					continue
				}
				err = l.Commit(tok)
				mu.Lock()
				if err == nil {
					acked[string(p)] = true
				} else {
					failed++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if failed == 0 {
		t.Fatal("EIO rule never failed a commit")
	}
	l.Close()
	replayed := map[string]bool{}
	for _, p := range replayAll(t, dir) {
		replayed[string(p)] = true
	}
	for p := range acked {
		if !replayed[p] {
			t.Fatalf("record %q was acked by Commit but lost on replay", p)
		}
	}
}

// TestRepairAfterFsyncEIO drives the full degradation arc: a failed
// fsync poisons the log, Repair rotates past the poisoned handle, new
// appends commit cleanly, and the fenced tokens keep failing — no
// late Commit can extract an ack the disk may not honor.
func TestRepairAfterFsyncEIO(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(nil, 1)
	l, err := Open(dir, Options{Fsync: FsyncAlways, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	// Healthy append.
	if _, tok, err := l.Append(payloadFor(0)); err != nil || l.Commit(tok) != nil {
		t.Fatalf("healthy commit failed: %v", err)
	}
	// Poison: one EIO on the next fsync.
	inj.Add(fault.Rule{Op: fault.OpSync, Count: 1, Err: syscall.EIO})
	_, tokBad, err := l.Append(payloadFor(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(tokBad); !errors.Is(err, syscall.EIO) {
		t.Fatalf("commit after EIO = %v, want EIO", err)
	}
	// Sticky: the next commit fails without touching the disk.
	_, tok2, err := l.Append(payloadFor(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(tok2); err == nil {
		t.Fatal("poisoned log acked a commit")
	}
	if err := l.Repair(); err != nil {
		t.Fatalf("repair: %v", err)
	}
	// Fenced tokens still fail — their durability is unprovable.
	if err := l.Commit(tokBad); err == nil {
		t.Fatal("fenced token committed after repair")
	}
	// New appends prove durability through the fresh handle.
	_, tok3, err := l.Append(payloadFor(3))
	if err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	if err := l.Commit(tok3); err != nil {
		t.Fatalf("commit after repair: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close after repair: %v", err)
	}
	got := replayAll(t, dir)
	if len(got) != 4 {
		t.Fatalf("replayed %d records, want 4", len(got))
	}
}

// TestRepairAfterTornWrite proves Repair truncates a torn frame before
// rotating, so the abandoned segment never carries mid-log garbage.
func TestRepairAfterTornWrite(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(nil, 1)
	inj.Add(fault.Rule{Op: fault.OpWrite, Path: "seg-", After: 2, Count: 1, ShortBy: 5})
	l, err := Open(dir, Options{Fsync: FsyncNone, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := l.Append(payloadFor(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if _, _, err := l.Append(payloadFor(2)); err == nil {
		t.Fatal("torn append reported success")
	}
	// Sticky until repaired.
	if _, _, err := l.Append(payloadFor(3)); err == nil {
		t.Fatal("append after tear succeeded without repair")
	}
	if err := l.Repair(); err != nil {
		t.Fatalf("repair: %v", err)
	}
	for i := 3; i < 6; i++ {
		if _, _, err := l.Append(payloadFor(i)); err != nil {
			t.Fatalf("append %d after repair: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Replay must cross the abandoned segment cleanly: records 0,1 then
	// 3,4,5. Mid-log corruption would error here.
	got := replayAll(t, dir)
	want := []int{0, 1, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, idx := range want {
		if string(got[i]) != string(payloadFor(idx)) {
			t.Fatalf("record %d = %q, want payload %d", i, got[i], idx)
		}
	}
}

// TestRepairWhileFaultPersists: Repair itself fails while the disk is
// still sick, leaves the log poisoned, and succeeds once the fault
// clears.
func TestRepairWhileFaultPersists(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(nil, 1)
	l, err := Open(dir, Options{Fsync: FsyncNone, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	tear := inj.Add(fault.Rule{Op: fault.OpWrite, Path: "seg-", ShortBy: 3})
	full := inj.Add(fault.Rule{Op: fault.OpOpen, Path: "seg-", Err: syscall.ENOSPC})
	if _, _, err := l.Append(payloadFor(0)); err == nil {
		t.Fatal("append during fault succeeded")
	}
	if err := l.Repair(); err == nil {
		t.Fatal("repair succeeded while segment creation still fails")
	}
	if _, _, err := l.Append(payloadFor(0)); err == nil {
		t.Fatal("failed repair cleared the poison")
	}
	inj.Drop(tear)
	inj.Drop(full)
	if err := l.Repair(); err != nil {
		t.Fatalf("repair after fault cleared: %v", err)
	}
	if _, _, err := l.Append(payloadFor(1)); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := replayAll(t, dir); len(got) != 1 || string(got[0]) != string(payloadFor(1)) {
		t.Fatalf("replay mismatch: %d records", len(got))
	}
}

// TestCommitShardsConcurrent exercises the sharded group-commit queue
// at several shard counts: every commit must succeed and every record
// must replay.
func TestCommitShardsConcurrent(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Fsync: FsyncAlways, CommitShards: shards})
			if err != nil {
				t.Fatal(err)
			}
			const workers, per = 8, 25
			var wg sync.WaitGroup
			errs := make(chan error, workers*per)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						_, tok, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
						if err != nil {
							errs <- err
							return
						}
						if err := l.Commit(tok); err != nil {
							errs <- err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("commit: %v", err)
			}
			st := l.Stats()
			if st.Appends != workers*per {
				t.Fatalf("%d appends, want %d", st.Appends, workers*per)
			}
			if st.Fsyncs == 0 || st.Fsyncs > st.Appends {
				t.Fatalf("fsyncs=%d outside (0, %d]: group commit broken?", st.Fsyncs, st.Appends)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if got := replayAll(t, dir); len(got) != workers*per {
				t.Fatalf("replayed %d, want %d", len(got), workers*per)
			}
		})
	}
}

// TestShardedCommitSurvivesReset: Reset mid-commit-storm releases
// waiters with ErrReset (or an ack for already-synced tokens) and the
// log keeps working afterwards at a fresh history.
func TestShardedCommitSurvivesReset(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways, CommitShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, tok, err := l.Append([]byte(fmt.Sprintf("pre-%d-%d", w, i)))
				if err != nil {
					return // reset closed the appender's world; fine
				}
				_ = l.Commit(tok) // nil or ErrReset, both legal
			}
		}(w)
	}
	wg.Wait()
	if err := l.Reset(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	_, tok, err := l.Append([]byte("post-reset"))
	if err != nil {
		t.Fatalf("append after reset: %v", err)
	}
	if err := l.Commit(tok); err != nil {
		t.Fatalf("commit after reset: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != 1 || string(got[0]) != "post-reset" {
		t.Fatalf("post-reset replay: %d records", len(got))
	}
}
