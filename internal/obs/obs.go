// Package obs is the serving stack's telemetry layer: per-request
// stage tracing through the record lifecycle (decode → intern → WAL
// append → group-commit fsync → queue wait → tracker step → snapshot
// publish → notify fan-out), per-stage latency histograms, a ring
// buffer of recent traces for the /v1/streams/{name}/trace endpoint,
// slow-request logging, and build/runtime introspection helpers.
//
// Everything here is dependency-free and cheap enough for the hot
// path: stage accumulation is a handful of atomic adds per chunk, the
// histograms are lock-free (metrics.LatencyHist), and a nil *Recorder
// or nil *Trace is a valid no-op receiver, so tracing can be disabled
// without branching at every call site.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tdnstream/internal/metrics"
)

// Stage identifies one segment of the record lifecycle. Stages are
// reported in pipeline order on /metrics (label stage=...) and in
// trace breakdowns.
type Stage int

const (
	// StageDecode is wire-format parsing: reading the (possibly
	// gzipped) request body and splitting it into raw records.
	StageDecode Stage = iota
	// StageIntern maps raw src/dst labels to dense node ids and
	// builds the worker's row batch.
	StageIntern
	// StageWALAppend is the write(2) of a chunk's WAL frame (not
	// the fsync — that is StageWALCommit).
	StageWALAppend
	// StageWALCommit is the group-commit fsync wait that makes the
	// ack durable under -wal-fsync always.
	StageWALCommit
	// StageQueueWait is time spent in the bounded ingest queue
	// between enqueue and the worker picking the chunk up.
	StageQueueWait
	// StageTrackerStep is the tracker feeding the chunk's rows
	// (the paper's per-interaction update cost).
	StageTrackerStep
	// StagePublish is solution extraction plus the atomic snapshot
	// swap that makes the new answer visible to /v1/topk.
	StagePublish
	// StageNotify is the notify hub's diff + journal + fan-out of
	// the published snapshot to subscribers.
	StageNotify

	// NumStages is the number of lifecycle stages.
	NumStages = int(StageNotify) + 1
)

var stageNames = [NumStages]string{
	"decode",
	"intern",
	"wal_append",
	"wal_commit",
	"queue_wait",
	"tracker_step",
	"snapshot_publish",
	"notify_fanout",
}

// String returns the stage's snake_case metric label.
func (s Stage) String() string {
	if s < 0 || int(s) >= NumStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// Stages lists all stages in pipeline order.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Config parameterizes a Recorder.
type Config struct {
	// RingSize bounds the ring of recent trace summaries kept for
	// the trace endpoint. ≤ 0 means the default (256).
	RingSize int
	// SlowThreshold marks a finished request as slow: it bumps the
	// slow counter and logs the per-stage breakdown. ≤ 0 means the
	// default (500ms).
	SlowThreshold time.Duration
	// Logger receives slow-request records. Nil means slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.RingSize <= 0 {
		c.RingSize = 256
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 500 * time.Millisecond
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// TraceSummary is one finished request's per-stage breakdown, as kept
// in the Recorder's ring and served by the trace endpoint.
type TraceSummary struct {
	Op      string
	Start   time.Time
	Total   time.Duration
	Status  int
	Records int64
	Chunks  int32
	Stages  [NumStages]time.Duration
}

// StageSum is the sum of the per-stage durations. On a single-chunk
// request the stages tile the request wall time (within scheduler
// noise); on multi-chunk requests decode pipelines against worker
// processing, so the sum can legitimately exceed Total.
func (s TraceSummary) StageSum() time.Duration {
	var sum time.Duration
	for _, d := range s.Stages {
		sum += d
	}
	return sum
}

// Recorder aggregates one stream's telemetry: per-stage and
// whole-request latency histograms, a bounded ring of recent trace
// summaries, and slow-request accounting. A nil *Recorder is a valid
// no-op receiver.
type Recorder struct {
	cfg    Config
	stream string

	stages [NumStages]metrics.LatencyHist
	total  metrics.LatencyHist
	slow   atomic.Uint64

	mu    sync.Mutex
	ring  []TraceSummary
	next  int
	count int
}

// NewRecorder builds a Recorder for the named stream.
func NewRecorder(stream string, cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{
		cfg:    cfg,
		stream: stream,
		ring:   make([]TraceSummary, cfg.RingSize),
	}
}

// Observe feeds one duration into the stage's histogram without
// attributing it to any particular trace.
func (r *Recorder) Observe(s Stage, d time.Duration) {
	if r == nil || s < 0 || int(s) >= NumStages {
		return
	}
	r.stages[s].Observe(d)
}

// StageHist returns the stage's latency histogram (nil on a nil
// Recorder). The histogram is safe for concurrent reads.
func (r *Recorder) StageHist(s Stage) *metrics.LatencyHist {
	if r == nil || s < 0 || int(s) >= NumStages {
		return nil
	}
	return &r.stages[s]
}

// TotalHist returns the whole-request latency histogram.
func (r *Recorder) TotalHist() *metrics.LatencyHist {
	if r == nil {
		return nil
	}
	return &r.total
}

// SlowCount returns how many finished requests exceeded the slow
// threshold.
func (r *Recorder) SlowCount() uint64 {
	if r == nil {
		return 0
	}
	return r.slow.Load()
}

// SlowThreshold returns the configured slow-request threshold.
func (r *Recorder) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.cfg.SlowThreshold
}

// Start opens a trace for one request. Returns nil (a valid no-op
// trace) on a nil Recorder. The caller must eventually call Finish;
// workers holding chunk references call Retain/Release around
// asynchronous processing.
func (r *Recorder) Start(op string) *Trace {
	if r == nil {
		return nil
	}
	t := &Trace{rec: r, op: op, start: time.Now()}
	t.refs.Store(1)
	return t
}

// Slowest returns up to n recent traces ordered by total duration,
// slowest first.
func (r *Recorder) Slowest(n int) []TraceSummary {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	out := make([]TraceSummary, 0, r.count)
	for i := 0; i < r.count; i++ {
		out = append(out, r.ring[i])
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Recent returns how many trace summaries the ring currently holds.
func (r *Recorder) Recent() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

func (r *Recorder) push(s TraceSummary) {
	r.mu.Lock()
	r.ring[r.next] = s
	r.next = (r.next + 1) % len(r.ring)
	if r.count < len(r.ring) {
		r.count++
	}
	r.mu.Unlock()
}

func (r *Recorder) finalize(t *Trace) {
	total := time.Since(t.start)
	r.total.Observe(total)
	sum := TraceSummary{
		Op:      t.op,
		Start:   t.start,
		Total:   total,
		Status:  int(t.status.Load()),
		Records: t.records.Load(),
		Chunks:  t.chunks.Load(),
	}
	for i := range sum.Stages {
		sum.Stages[i] = time.Duration(t.stages[i].Load())
	}
	r.push(sum)
	if total >= r.cfg.SlowThreshold {
		r.slow.Add(1)
		attrs := make([]any, 0, 2*NumStages+10)
		attrs = append(attrs,
			slog.String("stream", r.stream),
			slog.String("op", t.op),
			slog.Int("status", sum.Status),
			slog.Int64("records", sum.Records),
			slog.Int("chunks", int(sum.Chunks)),
			slog.Duration("total", total),
		)
		for i, d := range sum.Stages {
			if d > 0 {
				attrs = append(attrs, slog.Duration(stageNames[i], d))
			}
		}
		r.cfg.Logger.Warn("slow request", attrs...)
	}
}

// Trace accumulates one request's per-stage durations. All methods
// are safe on a nil receiver and safe for concurrent use: the HTTP
// handler and the stream worker feed the same trace from different
// goroutines.
//
// Lifecycle: Start gives the request one reference; each enqueued
// chunk takes another via Retain and drops it via Done when the
// worker finishes the chunk; the handler drops the request reference
// via Finish once the response status is known. When the last
// reference drops, the trace finalizes: total = now − start, the
// summary enters the Recorder's ring, and slow requests are logged.
type Trace struct {
	rec   *Recorder
	op    string
	start time.Time

	stages  [NumStages]atomic.Int64
	records atomic.Int64
	chunks  atomic.Int32
	status  atomic.Int32

	// lastDone is the unix-nano instant the previous chunk of this
	// request finished processing; the queue-wait attribution uses
	// it so overlapping per-chunk waits are not double counted.
	lastDone atomic.Int64
	refs     atomic.Int32
}

// Observe adds d to the stage's breakdown AND the recorder's stage
// histogram.
func (t *Trace) Observe(s Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.Add(s, d)
	t.rec.Observe(s, d)
}

// Add adds d to the stage's breakdown only (the caller feeds the
// histogram separately, or not at all).
func (t *Trace) Add(s Stage, d time.Duration) {
	if t == nil || s < 0 || int(s) >= NumStages || d <= 0 {
		return
	}
	t.stages[s].Add(int64(d))
}

// AddRecords notes n accepted records on the trace.
func (t *Trace) AddRecords(n int64) {
	if t == nil {
		return
	}
	t.records.Add(n)
}

// Retain takes a chunk reference: the trace will not finalize until
// the matching Done (and every other reference) is released. Call it
// before the chunk becomes visible to the worker.
func (t *Trace) Retain() {
	if t == nil {
		return
	}
	t.chunks.Add(1)
	t.refs.Add(1)
}

// QueueWait attributes the idle gap before a chunk's processing to
// the queue_wait stage: the time between the chunk's enqueue (or the
// end of this request's previous chunk, whichever is later) and
// dequeuedNs. Clamped at zero, so pipelined chunks whose wait fully
// overlaps earlier processing add nothing.
func (t *Trace) QueueWait(enqueuedNs, dequeuedNs int64) {
	if t == nil {
		return
	}
	from := enqueuedNs
	if last := t.lastDone.Load(); last > from {
		from = last
	}
	if gap := dequeuedNs - from; gap > 0 {
		t.Add(StageQueueWait, time.Duration(gap))
	}
}

// Done releases a chunk reference taken by Retain and records the
// chunk's completion instant for queue-wait attribution.
func (t *Trace) Done(doneNs int64) {
	if t == nil {
		return
	}
	for {
		last := t.lastDone.Load()
		if doneNs <= last || t.lastDone.CompareAndSwap(last, doneNs) {
			break
		}
	}
	t.release()
}

// Release drops a chunk reference without marking progress — used
// when a chunk is discarded unprocessed (queue teardown).
func (t *Trace) Release() {
	if t == nil {
		return
	}
	t.release()
}

// Unretain undoes a Retain whose chunk never became visible to the
// worker (a failed enqueue): drops the reference and the chunk count.
func (t *Trace) Unretain() {
	if t == nil {
		return
	}
	t.chunks.Add(-1)
	t.release()
}

// Finish records the response status and drops the request's
// reference. The trace finalizes once all chunk references are done.
func (t *Trace) Finish(status int) {
	if t == nil {
		return
	}
	t.status.Store(int32(status))
	t.release()
}

func (t *Trace) release() {
	if t.refs.Add(-1) == 0 {
		t.rec.finalize(t)
	}
}

// Version is the daemon's build version, overridable at link time:
//
//	go build -ldflags "-X tdnstream/internal/obs.Version=v1.2.3" ./cmd/influtrackd
var Version = "dev"

// Info is the build metadata exposed by influtrackd_build_info and
// the -version flag.
type Info struct {
	Version   string
	GoVersion string
	OS        string
	Arch      string
	Revision  string
}

// Build reports the running binary's build metadata. The VCS revision
// comes from debug.ReadBuildInfo when the binary was built inside a
// checkout ("unknown" otherwise).
func Build() Info {
	info := Info{
		Version:   Version,
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		Revision:  "unknown",
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				info.Revision = s.Value
				if len(info.Revision) > 12 {
					info.Revision = info.Revision[:12]
				}
			}
		}
	}
	return info
}

// String renders the build info as the -version flag prints it.
func (i Info) String() string {
	return fmt.Sprintf("influtrackd %s (%s %s/%s, revision %s)",
		i.Version, i.GoVersion, i.OS, i.Arch, i.Revision)
}

// WriteRuntimeMetrics writes Go runtime gauges (goroutines, heap, GC)
// in Prometheus text format. One runtime.ReadMemStats per scrape — a
// brief stop-the-world, microseconds on modern Go.
func WriteRuntimeMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	gauge := func(name, help string, v float64) {
		p("# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("influtrackd_go_goroutines", "Number of live goroutines.", float64(runtime.NumGoroutine()))
	gauge("influtrackd_go_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	gauge("influtrackd_go_heap_sys_bytes", "Bytes of heap memory obtained from the OS.", float64(ms.HeapSys))
	gauge("influtrackd_go_next_gc_bytes", "Heap size target of the next GC cycle.", float64(ms.NextGC))
	p("# HELP influtrackd_go_gc_runs_total Completed GC cycles.\n# TYPE influtrackd_go_gc_runs_total counter\ninflutrackd_go_gc_runs_total %d\n", ms.NumGC)
	p("# HELP influtrackd_go_gc_pause_seconds_total Cumulative GC stop-the-world pause time.\n# TYPE influtrackd_go_gc_pause_seconds_total counter\ninflutrackd_go_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)
}
