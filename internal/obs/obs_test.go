package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageNames(t *testing.T) {
	want := []string{
		"decode", "intern", "wal_append", "wal_commit",
		"queue_wait", "tracker_step", "snapshot_publish", "notify_fanout",
	}
	got := Stages()
	if len(got) != len(want) {
		t.Fatalf("Stages() = %d stages, want %d", len(got), len(want))
	}
	for i, s := range got {
		if s.String() != want[i] {
			t.Errorf("stage %d = %q, want %q", i, s.String(), want[i])
		}
	}
	if Stage(99).String() != "stage(99)" {
		t.Errorf("out-of-range stage String = %q", Stage(99).String())
	}
}

func TestTraceLifecycle(t *testing.T) {
	r := NewRecorder("s", Config{RingSize: 8, SlowThreshold: time.Hour})
	tr := r.Start("ingest")
	tr.Observe(StageDecode, 2*time.Millisecond)
	tr.Observe(StageIntern, time.Millisecond)
	tr.Retain() // chunk enqueued
	tr.AddRecords(100)
	tr.Finish(200) // handler done; chunk still in flight
	if got := r.Recent(); got != 0 {
		t.Fatalf("trace finalized before chunk done: ring=%d", got)
	}
	tr.Observe(StageTrackerStep, 3*time.Millisecond)
	tr.Done(time.Now().UnixNano())
	if got := r.Recent(); got != 1 {
		t.Fatalf("ring=%d after last release, want 1", got)
	}
	s := r.Slowest(10)[0]
	if s.Op != "ingest" || s.Status != 200 || s.Records != 100 || s.Chunks != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Stages[StageDecode] != 2*time.Millisecond || s.Stages[StageTrackerStep] != 3*time.Millisecond {
		t.Fatalf("stage breakdown = %v", s.Stages)
	}
	if s.StageSum() != 6*time.Millisecond {
		t.Fatalf("StageSum = %v, want 6ms", s.StageSum())
	}
	if s.Total <= 0 {
		t.Fatalf("Total = %v", s.Total)
	}
	if r.StageHist(StageDecode).Count() != 1 || r.TotalHist().Count() != 1 {
		t.Fatalf("histogram counts: stage=%d total=%d",
			r.StageHist(StageDecode).Count(), r.TotalHist().Count())
	}
}

func TestQueueWaitGap(t *testing.T) {
	r := NewRecorder("s", Config{})
	tr := r.Start("ingest")
	base := time.Now().UnixNano()
	// First chunk waited 10ms raw.
	tr.QueueWait(base, base+10e6)
	tr.Done(base + 20e6)
	// Second chunk enqueued at base+5ms, dequeued at base+25ms: raw
	// wait 20ms, but 15ms overlapped the first chunk's handling —
	// only the 5ms idle gap counts.
	tr.QueueWait(base+5e6, base+25e6)
	if got := time.Duration(tr.stages[StageQueueWait].Load()); got != 15*time.Millisecond {
		t.Fatalf("queue_wait = %v, want 15ms", got)
	}
	// Fully overlapped wait adds nothing.
	tr.QueueWait(base, base+15e6)
	if got := time.Duration(tr.stages[StageQueueWait].Load()); got != 15*time.Millisecond {
		t.Fatalf("queue_wait after overlapped chunk = %v, want 15ms", got)
	}
}

func TestRingEvictionAndSlowest(t *testing.T) {
	r := NewRecorder("s", Config{RingSize: 4, SlowThreshold: time.Hour})
	for i := 0; i < 10; i++ {
		tr := r.Start("op")
		tr.Add(StageDecode, time.Duration(i+1)*time.Millisecond)
		tr.Finish(200)
	}
	if got := r.Recent(); got != 4 {
		t.Fatalf("ring holds %d, want 4", got)
	}
	if got := len(r.Slowest(2)); got != 2 {
		t.Fatalf("Slowest(2) = %d entries", got)
	}
	all := r.Slowest(10)
	for i := 1; i < len(all); i++ {
		if all[i].Total > all[i-1].Total {
			t.Fatalf("Slowest not ordered: %v then %v", all[i-1].Total, all[i].Total)
		}
	}
}

func TestSlowLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	r := NewRecorder("demo", Config{SlowThreshold: time.Nanosecond, Logger: logger})
	tr := r.Start("ingest")
	tr.Add(StageTrackerStep, time.Millisecond)
	tr.Finish(200)
	if r.SlowCount() != 1 {
		t.Fatalf("SlowCount = %d, want 1", r.SlowCount())
	}
	out := buf.String()
	for _, want := range []string{"slow request", "stream=demo", "op=ingest", "tracker_step="} {
		if !strings.Contains(out, want) {
			t.Errorf("slow log missing %q: %s", want, out)
		}
	}
	// Fast requests below threshold are not logged.
	r2 := NewRecorder("demo", Config{SlowThreshold: time.Hour, Logger: logger})
	buf.Reset()
	tr2 := r2.Start("ingest")
	tr2.Finish(200)
	if buf.Len() != 0 || r2.SlowCount() != 0 {
		t.Fatalf("fast request logged: %q slow=%d", buf.String(), r2.SlowCount())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	var tr *Trace
	if tr = r.Start("op"); tr != nil {
		t.Fatalf("nil recorder Start = %v, want nil", tr)
	}
	// All of these must be no-ops, not panics.
	tr.Observe(StageDecode, time.Millisecond)
	tr.Add(StageIntern, time.Millisecond)
	tr.AddRecords(5)
	tr.Retain()
	tr.Unretain()
	tr.QueueWait(0, 1)
	tr.Done(1)
	tr.Release()
	tr.Finish(200)
	r.Observe(StageDecode, time.Millisecond)
	if r.StageHist(StageDecode) != nil || r.TotalHist() != nil {
		t.Fatal("nil recorder returned a histogram")
	}
	if r.Slowest(5) != nil || r.Recent() != 0 || r.SlowCount() != 0 || r.SlowThreshold() != 0 {
		t.Fatal("nil recorder returned data")
	}
}

func TestUnretainFailedEnqueue(t *testing.T) {
	r := NewRecorder("s", Config{SlowThreshold: time.Hour})
	tr := r.Start("ingest")
	tr.Retain()
	tr.Unretain() // enqueue failed
	tr.Finish(429)
	s := r.Slowest(1)
	if len(s) != 1 || s[0].Chunks != 0 || s[0].Status != 429 {
		t.Fatalf("summary after failed enqueue = %+v", s)
	}
}

func TestConcurrentTraceFeed(t *testing.T) {
	r := NewRecorder("s", Config{RingSize: 64, SlowThreshold: time.Hour})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := r.Start("ingest")
				tr.Retain()
				tr.Observe(StageDecode, time.Microsecond)
				go func() {
					tr.Observe(StageTrackerStep, time.Microsecond)
					tr.Done(time.Now().UnixNano())
				}()
				tr.Finish(200)
			}
		}()
	}
	wg.Wait()
	// Every trace finalizes exactly once.
	deadline := time.Now().Add(5 * time.Second)
	for r.TotalHist().Count() < 8*200 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := r.TotalHist().Count(); got != 8*200 {
		t.Fatalf("finalized %d traces, want %d", got, 8*200)
	}
}

func TestBuildInfo(t *testing.T) {
	info := Build()
	if info.Version == "" || info.GoVersion == "" || info.OS == "" || info.Arch == "" {
		t.Fatalf("incomplete build info: %+v", info)
	}
	s := info.String()
	if !strings.Contains(s, "influtrackd") || !strings.Contains(s, info.GoVersion) {
		t.Fatalf("String() = %q", s)
	}
}

func TestWriteRuntimeMetrics(t *testing.T) {
	var buf bytes.Buffer
	WriteRuntimeMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"influtrackd_go_goroutines",
		"influtrackd_go_heap_alloc_bytes",
		"influtrackd_go_gc_runs_total",
		"# TYPE influtrackd_go_goroutines gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime metrics missing %q", want)
		}
	}
}
