package obs

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Flight-recorder event kinds. Each names one lifecycle transition the
// serving stack considers significant enough to reconstruct an incident
// from. Kinds are stable strings (they appear in diagnostics bundles and
// CI assertions), not iota values.
const (
	EventWALDegraded     = "wal_degraded"       // WAL append/commit fault degraded a stream
	EventWALRepaired     = "wal_repaired"       // background repair rotated past the damage
	EventWALRotated      = "wal_rotated"        // repair rotated the log to a fresh segment
	EventWALTruncated    = "wal_truncated"      // checkpoint-watermark truncation dropped segments
	EventWALFenced       = "wal_fenced"         // ack-ambiguous commit tokens were fenced
	EventWALTornTail     = "wal_torn_tail"      // replay stopped at a torn/corrupt frame
	EventCheckpointSaved = "checkpoint_saved"   // one stream's checkpoint persisted
	EventCheckpointRetry = "checkpoint_retry"   // a checkpoint save attempt failed, retrying
	EventRestore         = "checkpoint_restore" // an admin restore replaced live state
	EventRestoreMarker   = "restore_marker"     // a restore marker was bound during WAL replay
	EventReplayDone      = "wal_replay_done"    // boot replay reconstructed pre-crash state
	EventSubscriberEvict = "subscriber_evicted" // notify hub dropped a slow subscriber
	EventAuditFloor      = "audit_floor_breach" // quality ratio crossed below the audit floor
	EventAuditRecover    = "audit_floor_recover"
	EventMemWatermark    = "mem_watermark_crossed" // engine footprint crossed -mem-watermark
	EventMemRecover      = "mem_watermark_recover"
	EventFaultRuleHit    = "fault_rule_hit" // an injected fault rule fired
	EventWorkerStall     = "worker_stall"   // watchdog: queued work but no recent publish
	EventLogWarn         = "log_warn"       // tee handler: a Warn+ slog record
	EventPanic           = "panic"          // a recovered panic (postmortem written)
)

// FlightEvent is one recorded lifecycle transition. Seq is assigned from
// a process-wide monotone counter at Record time, so events from
// different goroutines interleave in a single total order; Attrs carries
// kind-specific key/value detail (queue depths, errnos, thresholds).
type FlightEvent struct {
	Seq    uint64            `json:"seq"`
	Time   time.Time         `json:"time"`
	Kind   string            `json:"kind"`
	Stream string            `json:"stream,omitempty"`
	Cause  string            `json:"cause,omitempty"`
	Errno  string            `json:"errno,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Flight is the black-box flight recorder: a bounded in-memory ring of
// typed lifecycle events. Recording is a sequence fetch-add plus a short
// mutex-guarded ring store — cheap enough for transition sites that sit
// near the hot path (transitions are rare; the recorder just must never
// make them slow or lossy in ordering). A nil *Flight is a valid no-op
// receiver, so call sites need no branching when the recorder is
// disabled.
type Flight struct {
	seq      atomic.Uint64 // last assigned sequence number
	recorded atomic.Uint64 // total events ever recorded
	evicted  atomic.Uint64 // events overwritten by ring wraparound
	mu       sync.Mutex
	ring     []FlightEvent
	next     int  // ring slot the next event lands in
	wrapped  bool // ring has overwritten at least one event
	clock    func() time.Time
}

// NewFlight returns a recorder holding the most recent size events
// (minimum 16). clock is a test seam; nil means time.Now.
func NewFlight(size int, clock func() time.Time) *Flight {
	if size < 16 {
		size = 16
	}
	if clock == nil {
		clock = time.Now
	}
	return &Flight{ring: make([]FlightEvent, size), clock: clock}
}

// Record stores one event and returns its sequence number. attrs are
// alternating key/value pairs (an odd trailing key is dropped). Safe for
// concurrent use; nil-safe.
func (f *Flight) Record(kind, stream, cause, errno string, attrs ...string) uint64 {
	if f == nil {
		return 0
	}
	ev := FlightEvent{
		Seq:    f.seq.Add(1),
		Time:   f.clock(),
		Kind:   kind,
		Stream: stream,
		Cause:  cause,
		Errno:  errno,
	}
	if len(attrs) >= 2 {
		ev.Attrs = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			ev.Attrs[attrs[i]] = attrs[i+1]
		}
	}
	f.recorded.Add(1)
	f.mu.Lock()
	if f.wrapped {
		f.evicted.Add(1)
	}
	f.ring[f.next] = ev
	f.next++
	if f.next == len(f.ring) {
		f.next, f.wrapped = 0, true
	}
	f.mu.Unlock()
	return ev.Seq
}

// Events returns the retained events oldest-first. The snapshot is a
// copy; callers may hold it across further recording.
func (f *Flight) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []FlightEvent
	if f.wrapped {
		out = make([]FlightEvent, 0, len(f.ring))
		out = append(out, f.ring[f.next:]...)
		out = append(out, f.ring[:f.next]...)
	} else {
		out = append(out, f.ring[:f.next]...)
	}
	return out
}

// Recorded returns the total number of events ever recorded (including
// ones since evicted by ring wraparound).
func (f *Flight) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.recorded.Load()
}

// Evicted returns how many events the bounded ring has overwritten.
func (f *Flight) Evicted() uint64 {
	if f == nil {
		return 0
	}
	return f.evicted.Load()
}

// WriteJSON dumps the retained events plus recorder totals as one JSON
// document — the flight.json member of a diagnostics bundle.
func (f *Flight) WriteJSON(w io.Writer) error {
	doc := struct {
		Recorded uint64        `json:"recorded"`
		Evicted  uint64        `json:"evicted"`
		Capacity int           `json:"capacity"`
		Events   []FlightEvent `json:"events"`
	}{Recorded: f.Recorded(), Evicted: f.Evicted(), Events: f.Events()}
	if f != nil {
		doc.Capacity = len(f.ring)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ---- slog tee ---------------------------------------------------------

// TeeHandler is a slog.Handler that forwards every record to its base
// handler and mirrors Warn-and-above records into a Flight ring, so
// anything instrumented only via logging still lands in the black box.
// The mirrored event's kind is "log_warn", its cause is the log message,
// and its attrs are the record's flattened attributes (a "stream" attr
// is lifted into the event's Stream field, an "error" attr into Errno).
type TeeHandler struct {
	base   slog.Handler
	flight *Flight
	attrs  []slog.Attr // accumulated WithAttrs context
	group  string
}

// NewTeeHandler wraps base so Warn+ records are mirrored into flight.
func NewTeeHandler(base slog.Handler, flight *Flight) *TeeHandler {
	return &TeeHandler{base: base, flight: flight}
}

func (h *TeeHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.base.Enabled(ctx, level)
}

func (h *TeeHandler) Handle(ctx context.Context, r slog.Record) error {
	if r.Level >= slog.LevelWarn && h.flight != nil {
		var stream, errno string
		var kvs []string
		flatten := func(prefix string, a slog.Attr) {
			key := a.Key
			if prefix != "" {
				key = prefix + "." + key
			}
			val := a.Value.Resolve().String()
			switch key {
			case "stream":
				stream = val
			case "error", "err":
				errno = val
			default:
				kvs = append(kvs, key, val)
			}
		}
		for _, a := range h.attrs {
			flatten(h.group, a)
		}
		r.Attrs(func(a slog.Attr) bool {
			flatten(h.group, a)
			return true
		})
		kvs = append(kvs, "level", r.Level.String())
		h.flight.Record(EventLogWarn, stream, r.Message, errno, kvs...)
	}
	return h.base.Handle(ctx, r)
}

func (h *TeeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	merged = append(merged, h.attrs...)
	merged = append(merged, attrs...)
	return &TeeHandler{base: h.base.WithAttrs(attrs), flight: h.flight, attrs: merged, group: h.group}
}

func (h *TeeHandler) WithGroup(name string) slog.Handler {
	g := name
	if h.group != "" {
		g = h.group + "." + name
	}
	return &TeeHandler{base: h.base.WithGroup(name), flight: h.flight, attrs: h.attrs, group: g}
}
