package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"testing"
	"time"
)

func TestFlightRingBoundedAndOrdered(t *testing.T) {
	f := NewFlight(16, nil)
	for i := 0; i < 40; i++ {
		f.Record(EventCheckpointSaved, fmt.Sprintf("s%d", i), "save", "")
	}
	if got := f.Recorded(); got != 40 {
		t.Fatalf("Recorded() = %d, want 40", got)
	}
	if got := f.Evicted(); got != 24 {
		t.Fatalf("Evicted() = %d, want 24", got)
	}
	evs := f.Events()
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want ring capacity 16", len(evs))
	}
	// Oldest-first, gap-free, and ending at the newest sequence.
	for i, ev := range evs {
		want := uint64(40 - 16 + 1 + i)
		if ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest-first, contiguous)", i, ev.Seq, want)
		}
	}
	if evs[len(evs)-1].Stream != "s39" {
		t.Fatalf("newest retained event is %q, want s39", evs[len(evs)-1].Stream)
	}
}

func TestFlightPartialRingAndMinimumSize(t *testing.T) {
	f := NewFlight(0, nil) // clamped up to 16
	f.Record(EventWALDegraded, "a", "fault", "eio", "queue_depth", "3")
	f.Record(EventWALRepaired, "a", "healthy", "eio")
	evs := f.Events()
	if len(evs) != 2 {
		t.Fatalf("retained %d events, want 2", len(evs))
	}
	if evs[0].Kind != EventWALDegraded || evs[1].Kind != EventWALRepaired {
		t.Fatalf("order wrong: %q then %q", evs[0].Kind, evs[1].Kind)
	}
	if evs[0].Attrs["queue_depth"] != "3" {
		t.Fatalf("attrs not retained: %v", evs[0].Attrs)
	}
	if f.Evicted() != 0 {
		t.Fatalf("Evicted() = %d before any wraparound", f.Evicted())
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *Flight
	if seq := f.Record(EventPanic, "", "boom", ""); seq != 0 {
		t.Fatalf("nil Record returned %d", seq)
	}
	if f.Events() != nil || f.Recorded() != 0 || f.Evicted() != 0 {
		t.Fatal("nil accessors must be zero-valued")
	}
}

func TestFlightConcurrentRecord(t *testing.T) {
	f := NewFlight(64, nil)
	const goroutines, each = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				f.Record(EventLogWarn, fmt.Sprintf("g%d", g), "msg", "")
			}
		}(g)
	}
	wg.Wait()
	if got := f.Recorded(); got != goroutines*each {
		t.Fatalf("Recorded() = %d, want %d", got, goroutines*each)
	}
	evs := f.Events()
	if len(evs) != 64 {
		t.Fatalf("retained %d, want 64", len(evs))
	}
	// Sequence numbers must be strictly increasing oldest-first even
	// though slots were filled by racing goroutines.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order at %d: seq %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestFlightWriteJSON(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	f := NewFlight(16, func() time.Time { return base })
	f.Record(EventWALDegraded, "load-0", "write-ahead log fault", "injected EIO")
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		Recorded uint64        `json:"recorded"`
		Evicted  uint64        `json:"evicted"`
		Capacity int           `json:"capacity"`
		Events   []FlightEvent `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v", err)
	}
	if doc.Recorded != 1 || doc.Capacity != 16 || len(doc.Events) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Events[0].Errno != "injected EIO" || !doc.Events[0].Time.Equal(base) {
		t.Fatalf("event round-trip lost fields: %+v", doc.Events[0])
	}
}

func TestTeeHandlerMirrorsWarnPlus(t *testing.T) {
	f := NewFlight(16, nil)
	logger := slog.New(NewTeeHandler(slog.NewTextHandler(io.Discard, nil), f))

	logger.Info("quiet info", "stream", "a") // below the mirror threshold
	logger.Warn("stream degraded: write-ahead log fault",
		"stream", "load-1", "error", "injected EIO", "queue_depth", 7)
	logger.Error("checkpoint failed", "err", "enospc")

	evs := f.Events()
	if len(evs) != 2 {
		t.Fatalf("mirrored %d events, want 2 (Warn + Error only): %+v", len(evs), evs)
	}
	warn := evs[0]
	if warn.Kind != EventLogWarn || warn.Stream != "load-1" || warn.Errno != "injected EIO" {
		t.Fatalf("warn event lifted attrs wrong: %+v", warn)
	}
	if warn.Cause != "stream degraded: write-ahead log fault" {
		t.Fatalf("cause should be the log message, got %q", warn.Cause)
	}
	if warn.Attrs["queue_depth"] != "7" || warn.Attrs["level"] != "WARN" {
		t.Fatalf("attrs: %v", warn.Attrs)
	}
	if evs[1].Errno != "enospc" || evs[1].Attrs["level"] != "ERROR" {
		t.Fatalf("error event: %+v", evs[1])
	}
}

func TestTeeHandlerWithAttrsContext(t *testing.T) {
	f := NewFlight(16, nil)
	base := slog.New(NewTeeHandler(slog.NewTextHandler(io.Discard, nil), f))
	logger := base.With("stream", "pinned")
	logger.Warn("slow subscriber evicted")
	evs := f.Events()
	if len(evs) != 1 || evs[0].Stream != "pinned" {
		t.Fatalf("WithAttrs context not carried into the mirror: %+v", evs)
	}
}
