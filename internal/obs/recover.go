package obs

import (
	"fmt"
	"net/http"
)

// RecoverHandler wraps an http.Handler so that a panic on the request
// path runs onPanic with the recovered value — the daemon installs its
// crash-postmortem writer there — and is then re-raised, so net/http's
// own recovery still aborts the connection and logs the stack. onPanic
// must not panic itself. http.ErrAbortHandler (the sanctioned way to
// abort a response) passes through without triggering a postmortem.
func RecoverHandler(next http.Handler, onPanic func(v any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if err, ok := v.(error); ok && err == http.ErrAbortHandler {
				panic(v)
			}
			if onPanic != nil {
				onPanic(v)
			}
			panic(v)
		}()
		next.ServeHTTP(w, r)
	})
}

// PanicValue renders a recovered value the way the flight recorder and
// postmortem file names want it: a short single-line string.
func PanicValue(v any) string { return fmt.Sprintf("%v", v) }
