package influence

import (
	"math/rand"
	"testing"

	"tdnstream/internal/graph"
	"tdnstream/internal/ids"
)

// The oracle micro-benchmarks below pin the per-call cost of the two hot
// primitives every tracker is built on: MarginalGain (one f_t evaluation
// per sieve threshold test) and ReachSet.Clone (one per candidate per
// HISTAPPROX instance clone). They run on a fixed seeded random graph so
// numbers are comparable across commits; scripts/bench_pr1.sh records
// them into BENCH_PR1.json.

// benchGraph builds a seeded Erdős–Rényi-style ADN with n nodes and m
// distinct directed edges.
func benchGraph(n, m int) *graph.ADN {
	rng := rand.New(rand.NewSource(42))
	g := graph.NewADN()
	for g.NumEdges() < m {
		u := ids.NodeID(rng.Intn(n))
		v := ids.NodeID(rng.Intn(n))
		g.AddEdge(u, v)
	}
	return g
}

// BenchmarkMarginalGain measures one δ_S(v) evaluation against a
// materialized R(S) covering roughly half the graph — the shape of the
// sieve's threshold test on a warm candidate.
func BenchmarkMarginalGain(b *testing.B) {
	const n, m = 20000, 60000
	g := benchGraph(n, m)
	o := New(g, nil)

	// Materialize R(S) from a handful of seeds, then collect probe nodes
	// outside it so every MarginalGain call walks a real frontier.
	rs := NewReachSet()
	o.FillReachSet(rs, 0, 1, 2, 3, 4)
	rng := rand.New(rand.NewSource(7))
	var probes []ids.NodeID
	for len(probes) < 256 {
		v := ids.NodeID(rng.Intn(n))
		if !rs.Contains(v) {
			probes = append(probes, v)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.MarginalGain(rs, probes[i%len(probes)], false)
	}
}

// BenchmarkReachSetClone measures deep-copying one candidate reach set of
// ~n/2 members — done once per candidate per instance clone in HISTAPPROX.
func BenchmarkReachSetClone(b *testing.B) {
	const n, m = 20000, 60000
	g := benchGraph(n, m)
	o := New(g, nil)
	rs := NewReachSet()
	o.FillReachSet(rs, 0, 1, 2, 3, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := rs.Clone()
		if c.Len() != rs.Len() {
			b.Fatal("clone length mismatch")
		}
	}
}

// BenchmarkReachSetContains measures the membership probe on the expand
// path (one per visited edge of every BFS).
func BenchmarkReachSetContains(b *testing.B) {
	const n, m = 20000, 60000
	g := benchGraph(n, m)
	o := New(g, nil)
	rs := NewReachSet()
	o.FillReachSet(rs, 0, 1, 2, 3, 4)
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if rs.Contains(ids.NodeID(i % n)) {
			hits++
		}
	}
	_ = hits
}

// BenchmarkOracleUpdate measures the incremental R(S) refresh after a
// small batch of new edges (Sieve.Feed does one per candidate per batch).
func BenchmarkOracleUpdate(b *testing.B) {
	const n, m = 20000, 60000
	g := benchGraph(n, m)
	o := New(g, nil)
	rs := NewReachSet()
	o.FillReachSet(rs, 0, 1, 2, 3, 4)
	// Edges whose sources sit outside R(S): Update scans but does not grow,
	// which is the common steady-state case.
	rng := rand.New(rand.NewSource(11))
	var batch []Endpoints
	for len(batch) < 32 {
		u := ids.NodeID(rng.Intn(n))
		v := ids.NodeID(rng.Intn(n))
		if !rs.Contains(u) {
			batch = append(batch, Endpoints{Src: u, Dst: v})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Update(rs, batch)
	}
}

// BenchmarkAffected measures the reverse multi-source BFS (graph
// bookkeeping done once per fed batch).
func BenchmarkAffected(b *testing.B) {
	const n, m = 20000, 60000
	g := benchGraph(n, m)
	o := New(g, nil)
	srcs := []ids.NodeID{0, 1, 2, 3, 4, 5, 6, 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Affected(srcs)
	}
}
