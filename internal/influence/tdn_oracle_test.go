package influence

import (
	"testing"

	"tdnstream/internal/graph"
	"tdnstream/internal/ids"
	"tdnstream/internal/stream"
)

// The oracle must see expirations when traversing a TDN: spreads shrink
// as edges die, and V̄t shrinks accordingly.
func TestOracleOverExpiringTDN(t *testing.T) {
	g := graph.NewTDN(0)
	o := New(g, nil)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AdvanceTo(1))
	// chain 1→2→3 with staggered lifetimes, plus a parallel edge.
	must(g.Add(stream.Edge{Src: 1, Dst: 2, T: 1, Lifetime: 3}))
	must(g.Add(stream.Edge{Src: 2, Dst: 3, T: 1, Lifetime: 1}))
	must(g.Add(stream.Edge{Src: 2, Dst: 3, T: 1, Lifetime: 2}))

	if got := o.Spread(1); got != 3 {
		t.Fatalf("t=1: f({1}) = %d, want 3", got)
	}
	must(g.AdvanceTo(2)) // first 2→3 copy dies; the second keeps the path
	if got := o.Spread(1); got != 3 {
		t.Fatalf("t=2: f({1}) = %d, want 3 (multi-edge keeps path alive)", got)
	}
	must(g.AdvanceTo(3)) // 2→3 gone entirely
	if got := o.Spread(1); got != 2 {
		t.Fatalf("t=3: f({1}) = %d, want 2", got)
	}
	// Affected of source 2 at t=3: nodes reaching 2 = {1, 2}.
	aff := o.Affected([]ids.NodeID{2})
	if len(aff) != 2 {
		t.Fatalf("t=3: affected = %v, want {1,2}", aff)
	}
	must(g.AdvanceTo(4)) // everything gone
	if got := o.Spread(1); got != 1 {
		t.Fatalf("t=4: f({1}) = %d, want 1 (isolated seed counts itself)", got)
	}
}

// Reach sets over a TDN are NOT maintained across expirations by Update
// (which only handles additions); a fresh FillReachSet must be used
// after the clock moves. This test documents that contract.
func TestReachSetContractOnTDN(t *testing.T) {
	g := graph.NewTDN(0)
	o := New(g, nil)
	if err := g.AdvanceTo(1); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(stream.Edge{Src: 1, Dst: 2, T: 1, Lifetime: 1}); err != nil {
		t.Fatal(err)
	}
	rs := NewReachSet()
	if n := o.FillReachSet(rs, 1); n != 2 {
		t.Fatalf("f({1}) = %d, want 2", n)
	}
	if err := g.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
	// The cached set is now stale (too large) — recompute.
	if rs.Len() != 2 {
		t.Fatal("cached set should still hold the stale value")
	}
	if n := o.FillReachSet(rs, 1); n != 1 {
		t.Fatalf("after expiry f({1}) = %d, want 1", n)
	}
}

// Generation-counter wraparound: when gen hits its ceiling the visited
// scratch must be cleared and traversals stay correct.
func TestOracleGenerationWraparound(t *testing.T) {
	g := graph.NewADN()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	o := New(g, nil)
	if got := o.Spread(1); got != 3 {
		t.Fatalf("pre-wrap Spread = %d", got)
	}
	o.gen = ^uint32(0) - 1 // force the wrap on the next two queries
	if got := o.Spread(1); got != 3 {
		t.Fatalf("at-ceiling Spread = %d", got)
	}
	if got := o.Spread(1); got != 3 {
		t.Fatalf("post-wrap Spread = %d", got)
	}
	if o.gen >= ^uint32(0)-1 {
		t.Fatalf("gen did not reset: %d", o.gen)
	}
	rs := NewReachSet()
	if n := o.FillReachSet(rs, 2); n != 2 {
		t.Fatalf("post-wrap FillReachSet = %d", n)
	}
}
