// Package influence implements the paper's influence-spread oracle:
//
//	f_t(S) = |{v : v reachable from S in G_t}|   (Definition 3)
//
// f_t is normalized, monotone and submodular (Theorem 1), which is what
// every algorithm in this module exploits. An "oracle call" — the paper's
// efficiency unit — is one evaluation of f_t; each exported evaluation
// method increments the shared metrics.Counter exactly once.
//
// Three implementation ideas keep millions of evaluations affordable:
//
//  1. Generation-stamped visited slices indexed by dense NodeID, so a BFS
//     allocates nothing in steady state.
//  2. Reach-set closure: R(S) is closed under reachability, so the
//     marginal gain f(S∪{v})−f(S) equals the size of a BFS from v that
//     never expands nodes already in R(S) — exact, and proportional to
//     the *new* region only. Sieve candidates cache R(S) and keep it
//     current incrementally as edges arrive.
//  3. Dense containers: ReachSet is a growable bitset ([]uint64 + count),
//     so the per-visited-edge membership probe is a shift+mask instead of
//     a map lookup and Clone is a single word-array copy; graphs that
//     expose slice-backed adjacency (SliceGraph, e.g. graph.ADN) are
//     traversed by ranging over the neighbor slice directly, with no
//     per-node callback.
package influence

import (
	"math/bits"

	"tdnstream/internal/ids"
	"tdnstream/internal/metrics"
)

// Graph is the adjacency view the oracle traverses. Both graph.ADN and
// graph.TDN implement it.
type Graph interface {
	// OutNeighbors visits the distinct out-neighbors of u.
	OutNeighbors(u ids.NodeID, visit func(v ids.NodeID))
	// InNeighbors visits the distinct in-neighbors of u.
	InNeighbors(u ids.NodeID, visit func(v ids.NodeID))
	// NodeCap returns an exclusive upper bound on node ids present.
	NodeCap() int
}

// SliceGraph is an optional fast path: graphs whose adjacency is
// slice-backed expose it directly so the BFS inner loop ranges over a
// []NodeID instead of paying an interface call plus closure per node.
// Returned slices must stay valid and immutable for the duration of the
// traversal (graph.ADN satisfies this; its slices are append-only).
type SliceGraph interface {
	Graph
	// OutSlice returns the distinct out-neighbors of u (nil if none).
	OutSlice(u ids.NodeID) []ids.NodeID
	// InSlice returns the distinct in-neighbors of u (nil if none).
	InSlice(u ids.NodeID) []ids.NodeID
}

// ReachSet is a materialized R(S): the set of nodes reachable from a seed
// set, including the seeds. It is closed under reachability by
// construction, which is the invariant MarginalGain depends on.
//
// Representation: a growable bitset indexed by dense NodeID plus a member
// count, so Contains is a shift+mask, Clone is one []uint64 copy, and
// Reset keeps the capacity for reuse.
type ReachSet struct {
	words []uint64
	count int
}

// NewReachSet returns an empty reach set.
func NewReachSet() *ReachSet { return &ReachSet{} }

// Contains reports membership.
func (r *ReachSet) Contains(n ids.NodeID) bool {
	w := int(n >> 6)
	return w < len(r.words) && r.words[w]&(1<<(n&63)) != 0
}

// Len returns |R(S)| = f(S).
func (r *ReachSet) Len() int { return r.count }

// add inserts a node (package-private: only the oracle may grow a reach
// set, preserving closure).
func (r *ReachSet) add(n ids.NodeID) {
	w := int(n >> 6)
	if w >= len(r.words) {
		grown := make([]uint64, w+w/2+1)
		copy(grown, r.words)
		r.words = grown
	}
	mask := uint64(1) << (n & 63)
	if r.words[w]&mask == 0 {
		r.words[w] |= mask
		r.count++
	}
}

// Clone deep-copies the set: one word-array copy, O(NodeCap/64).
func (r *ReachSet) Clone() *ReachSet {
	return &ReachSet{words: append([]uint64(nil), r.words...), count: r.count}
}

// Reset empties the set in place, keeping its capacity.
func (r *ReachSet) Reset() {
	clear(r.words)
	r.count = 0
}

// SizeBytes returns the heap bytes held by the bitset's backing array —
// the unit the engine-introspection memory accountant sums bottom-up.
func (r *ReachSet) SizeBytes() int64 { return int64(cap(r.words)) * 8 }

// ForEach visits every member in ascending NodeID order.
func (r *ReachSet) ForEach(visit func(n ids.NodeID)) {
	for w, word := range r.words {
		base := ids.NodeID(w) << 6
		for word != 0 {
			visit(base + ids.NodeID(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
}

// Endpoints is a bare directed pair, the edge shape Update consumes.
type Endpoints struct {
	Src, Dst ids.NodeID
}

// Oracle evaluates f_t over one Graph. It is not safe for concurrent use;
// the optional parallel sieve gives each worker its own Oracle sharing one
// counter (Counter is atomic).
type Oracle struct {
	g       Graph
	sg      SliceGraph // non-nil when g exposes slice-backed adjacency
	calls   *metrics.Counter
	visited []uint32
	gen     uint32
	queue   []ids.NodeID
	delta   []ids.NodeID
	// affected is the reusable output buffer of Affected.
	affected []ids.NodeID
}

// New returns an oracle over g counting calls into c (c may be nil, in
// which case a private counter is used).
func New(g Graph, c *metrics.Counter) *Oracle {
	if c == nil {
		c = &metrics.Counter{}
	}
	o := &Oracle{g: g, calls: c}
	o.sg, _ = g.(SliceGraph)
	return o
}

// Calls returns the shared oracle-call counter.
func (o *Oracle) Calls() *metrics.Counter { return o.calls }

// ScratchBytes returns the heap bytes held by the oracle's reusable BFS
// scratch (generation-stamped visited stamps plus the queue/delta/affected
// buffers). The graph itself is accounted separately by its owner.
func (o *Oracle) ScratchBytes() int64 {
	return int64(cap(o.visited))*4 +
		int64(cap(o.queue)+cap(o.delta)+cap(o.affected))*4
}

// Graph returns the underlying graph view.
func (o *Oracle) Graph() Graph { return o.g }

// Retarget points the oracle at a different graph (used after cloning an
// instance, whose oracle must traverse the cloned graph).
func (o *Oracle) Retarget(g Graph) {
	o.g = g
	o.sg, _ = g.(SliceGraph)
}

func (o *Oracle) nextGen() uint32 {
	if o.gen == ^uint32(0) {
		for i := range o.visited {
			o.visited[i] = 0
		}
		o.gen = 0
	}
	o.gen++
	o.grow(o.g.NodeCap())
	return o.gen
}

// grow widens the visited scratch to cover node ids < n. Queries may name
// seeds the graph has never seen (f of an absent node is just 1), so entry
// points also grow for their explicit seeds.
func (o *Oracle) grow(n int) {
	if n > len(o.visited) {
		grown := make([]uint32, n+n/2+8)
		copy(grown, o.visited)
		o.visited = grown
	}
}

// Spread evaluates f_t(seeds) with a forward BFS. One oracle call.
func (o *Oracle) Spread(seeds ...ids.NodeID) int {
	o.calls.Inc()
	gen := o.nextGen()
	q := o.queue[:0]
	count := 0
	for _, s := range seeds {
		o.grow(int(s) + 1)
		if o.visited[s] != gen {
			o.visited[s] = gen
			count++
			q = append(q, s)
		}
	}
	if o.sg != nil {
		for len(q) > 0 {
			u := q[len(q)-1]
			q = q[:len(q)-1]
			for _, v := range o.sg.OutSlice(u) {
				if o.visited[v] != gen {
					o.visited[v] = gen
					count++
					q = append(q, v)
				}
			}
		}
	} else {
		visit := func(v ids.NodeID) {
			if o.visited[v] != gen {
				o.visited[v] = gen
				count++
				q = append(q, v)
			}
		}
		for len(q) > 0 {
			u := q[len(q)-1]
			q = q[:len(q)-1]
			o.g.OutNeighbors(u, visit)
		}
	}
	o.queue = q[:0]
	return count
}

// FillReachSet evaluates f_t(seeds), materializing R(seeds) into dst
// (which is reset first). One oracle call. Returns |R(seeds)|.
func (o *Oracle) FillReachSet(dst *ReachSet, seeds ...ids.NodeID) int {
	o.calls.Inc()
	dst.Reset()
	gen := o.nextGen()
	q := o.queue[:0]
	for _, s := range seeds {
		o.grow(int(s) + 1)
		if o.visited[s] != gen {
			o.visited[s] = gen
			dst.add(s)
			q = append(q, s)
		}
	}
	if o.sg != nil {
		for len(q) > 0 {
			u := q[len(q)-1]
			q = q[:len(q)-1]
			for _, v := range o.sg.OutSlice(u) {
				if o.visited[v] != gen {
					o.visited[v] = gen
					dst.add(v)
					q = append(q, v)
				}
			}
		}
	} else {
		visit := func(v ids.NodeID) {
			if o.visited[v] != gen {
				o.visited[v] = gen
				dst.add(v)
				q = append(q, v)
			}
		}
		for len(q) > 0 {
			u := q[len(q)-1]
			q = q[:len(q)-1]
			o.g.OutNeighbors(u, visit)
		}
	}
	o.queue = q[:0]
	return dst.Len()
}

// expand runs a BFS from the queued frontier, skipping nodes in rs, and
// returns the newly discovered nodes (including the frontier itself).
// Assumes frontier nodes are stamped with gen and not in rs.
func (o *Oracle) expand(q []ids.NodeID, gen uint32, rs *ReachSet) []ids.NodeID {
	delta := o.delta[:0]
	delta = append(delta, q...)
	if o.sg != nil {
		for len(q) > 0 {
			u := q[len(q)-1]
			q = q[:len(q)-1]
			for _, w := range o.sg.OutSlice(u) {
				if o.visited[w] == gen || rs.Contains(w) {
					continue
				}
				o.visited[w] = gen
				delta = append(delta, w)
				q = append(q, w)
			}
		}
	} else {
		visit := func(w ids.NodeID) {
			if o.visited[w] == gen || rs.Contains(w) {
				return
			}
			o.visited[w] = gen
			delta = append(delta, w)
			q = append(q, w)
		}
		for len(q) > 0 {
			u := q[len(q)-1]
			q = q[:len(q)-1]
			o.g.OutNeighbors(u, visit)
		}
	}
	o.queue = q[:0]
	o.delta = delta
	return delta
}

// MarginalGain evaluates f(S∪{v}) − f(S) given the materialized, current
// R(S). Because R(S) is closed under reachability, the BFS from v never
// needs to expand a node already in rs. One oracle call.
//
// When merge is true the newly reached nodes are added to rs, turning it
// into R(S∪{v}) — callers use this when the sieve accepts v.
func (o *Oracle) MarginalGain(rs *ReachSet, v ids.NodeID, merge bool) int {
	o.calls.Inc()
	if rs.Contains(v) {
		return 0
	}
	gen := o.nextGen()
	o.grow(int(v) + 1)
	q := append(o.queue[:0], v)
	o.visited[v] = gen
	delta := o.expand(q, gen, rs)
	if merge {
		for _, n := range delta {
			rs.add(n)
		}
	}
	return len(delta)
}

// Update re-evaluates R(S) in place after new edges were added to the
// graph: for each edge (u,w) whose source u is already in R(S),
// everything reachable from w joins R(S). Counted as one oracle call if a
// re-evaluation was needed, zero otherwise — matching the paper's
// "number of evaluations of f_t". Returns true if the set grew.
func (o *Oracle) Update(rs *ReachSet, edges []Endpoints) bool {
	gen := o.nextGen()
	q := o.queue[:0]
	for _, e := range edges {
		if rs.Contains(e.Src) && !rs.Contains(e.Dst) && o.visited[e.Dst] != gen {
			o.visited[e.Dst] = gen
			q = append(q, e.Dst)
		}
	}
	if len(q) == 0 {
		o.queue = q
		return false
	}
	o.calls.Inc()
	delta := o.expand(q, gen, rs)
	for _, n := range delta {
		rs.add(n)
	}
	return len(delta) > 0
}

// Affected returns every node whose influence spread may have changed
// after edges with the given source endpoints were inserted: all nodes
// that can reach any source (the paper's V̄_t, Alg. 1 line 3). Computed
// with one multi-source reverse BFS; it is graph bookkeeping, not an f_t
// evaluation, so it does not count as an oracle call.
//
// The returned slice is scratch owned by the oracle: it is valid until
// the next Affected call and must not be retained or mutated.
func (o *Oracle) Affected(sources []ids.NodeID) []ids.NodeID {
	gen := o.nextGen()
	q := o.queue[:0]
	out := o.affected[:0]
	for _, s := range sources {
		o.grow(int(s) + 1)
		if o.visited[s] != gen {
			o.visited[s] = gen
			out = append(out, s)
			q = append(q, s)
		}
	}
	if o.sg != nil {
		for len(q) > 0 {
			u := q[len(q)-1]
			q = q[:len(q)-1]
			for _, v := range o.sg.InSlice(u) {
				if o.visited[v] != gen {
					o.visited[v] = gen
					out = append(out, v)
					q = append(q, v)
				}
			}
		}
	} else {
		visit := func(v ids.NodeID) {
			if o.visited[v] != gen {
				o.visited[v] = gen
				out = append(out, v)
				q = append(q, v)
			}
		}
		for len(q) > 0 {
			u := q[len(q)-1]
			q = q[:len(q)-1]
			o.g.InNeighbors(u, visit)
		}
	}
	o.queue = q[:0]
	o.affected = out
	return out
}
