// Package influence implements the paper's influence-spread oracle:
//
//	f_t(S) = |{v : v reachable from S in G_t}|   (Definition 3)
//
// f_t is normalized, monotone and submodular (Theorem 1), which is what
// every algorithm in this module exploits. An "oracle call" — the paper's
// efficiency unit — is one evaluation of f_t; each exported evaluation
// method increments the shared metrics.Counter exactly once.
//
// Two implementation ideas keep millions of evaluations affordable:
//
//  1. Generation-stamped visited slices indexed by dense NodeID, so a BFS
//     allocates nothing in steady state.
//  2. Reach-set closure: R(S) is closed under reachability, so the
//     marginal gain f(S∪{v})−f(S) equals the size of a BFS from v that
//     never expands nodes already in R(S) — exact, and proportional to
//     the *new* region only. Sieve candidates cache R(S) and keep it
//     current incrementally as edges arrive.
package influence

import (
	"tdnstream/internal/ids"
	"tdnstream/internal/metrics"
)

// Graph is the adjacency view the oracle traverses. Both graph.ADN and
// graph.TDN implement it.
type Graph interface {
	// OutNeighbors visits the distinct out-neighbors of u.
	OutNeighbors(u ids.NodeID, visit func(v ids.NodeID))
	// InNeighbors visits the distinct in-neighbors of u.
	InNeighbors(u ids.NodeID, visit func(v ids.NodeID))
	// NodeCap returns an exclusive upper bound on node ids present.
	NodeCap() int
}

// ReachSet is a materialized R(S): the set of nodes reachable from a seed
// set, including the seeds. It is closed under reachability by
// construction, which is the invariant MarginalGain depends on.
type ReachSet struct {
	m map[ids.NodeID]struct{}
}

// NewReachSet returns an empty reach set.
func NewReachSet() *ReachSet { return &ReachSet{m: make(map[ids.NodeID]struct{})} }

// Contains reports membership.
func (r *ReachSet) Contains(n ids.NodeID) bool { _, ok := r.m[n]; return ok }

// Len returns |R(S)| = f(S).
func (r *ReachSet) Len() int { return len(r.m) }

// add inserts a node (package-private: only the oracle may grow a reach
// set, preserving closure).
func (r *ReachSet) add(n ids.NodeID) { r.m[n] = struct{}{} }

// Clone deep-copies the set.
func (r *ReachSet) Clone() *ReachSet {
	c := &ReachSet{m: make(map[ids.NodeID]struct{}, len(r.m))}
	for n := range r.m {
		c.m[n] = struct{}{}
	}
	return c
}

// Reset empties the set in place.
func (r *ReachSet) Reset() { clear(r.m) }

// ForEach visits every member.
func (r *ReachSet) ForEach(visit func(n ids.NodeID)) {
	for n := range r.m {
		visit(n)
	}
}

// Endpoints is a bare directed pair, the edge shape Update consumes.
type Endpoints struct {
	Src, Dst ids.NodeID
}

// Oracle evaluates f_t over one Graph. It is not safe for concurrent use;
// the optional parallel sieve gives each worker its own Oracle sharing one
// counter (Counter is atomic).
type Oracle struct {
	g       Graph
	calls   *metrics.Counter
	visited []uint32
	gen     uint32
	queue   []ids.NodeID
	delta   []ids.NodeID
}

// New returns an oracle over g counting calls into c (c may be nil, in
// which case a private counter is used).
func New(g Graph, c *metrics.Counter) *Oracle {
	if c == nil {
		c = &metrics.Counter{}
	}
	return &Oracle{g: g, calls: c}
}

// Calls returns the shared oracle-call counter.
func (o *Oracle) Calls() *metrics.Counter { return o.calls }

// Graph returns the underlying graph view.
func (o *Oracle) Graph() Graph { return o.g }

// Retarget points the oracle at a different graph (used after cloning an
// instance, whose oracle must traverse the cloned graph).
func (o *Oracle) Retarget(g Graph) { o.g = g }

func (o *Oracle) nextGen() uint32 {
	if o.gen == ^uint32(0) {
		for i := range o.visited {
			o.visited[i] = 0
		}
		o.gen = 0
	}
	o.gen++
	o.grow(o.g.NodeCap())
	return o.gen
}

// grow widens the visited scratch to cover node ids < n. Queries may name
// seeds the graph has never seen (f of an absent node is just 1), so entry
// points also grow for their explicit seeds.
func (o *Oracle) grow(n int) {
	if n > len(o.visited) {
		grown := make([]uint32, n+n/2+8)
		copy(grown, o.visited)
		o.visited = grown
	}
}

// Spread evaluates f_t(seeds) with a forward BFS. One oracle call.
func (o *Oracle) Spread(seeds ...ids.NodeID) int {
	o.calls.Inc()
	gen := o.nextGen()
	q := o.queue[:0]
	count := 0
	for _, s := range seeds {
		o.grow(int(s) + 1)
		if o.visited[s] != gen {
			o.visited[s] = gen
			count++
			q = append(q, s)
		}
	}
	for len(q) > 0 {
		u := q[len(q)-1]
		q = q[:len(q)-1]
		o.g.OutNeighbors(u, func(v ids.NodeID) {
			if o.visited[v] != gen {
				o.visited[v] = gen
				count++
				q = append(q, v)
			}
		})
	}
	o.queue = q[:0]
	return count
}

// FillReachSet evaluates f_t(seeds), materializing R(seeds) into dst
// (which is reset first). One oracle call. Returns |R(seeds)|.
func (o *Oracle) FillReachSet(dst *ReachSet, seeds ...ids.NodeID) int {
	o.calls.Inc()
	dst.Reset()
	gen := o.nextGen()
	q := o.queue[:0]
	for _, s := range seeds {
		o.grow(int(s) + 1)
		if o.visited[s] != gen {
			o.visited[s] = gen
			dst.add(s)
			q = append(q, s)
		}
	}
	for len(q) > 0 {
		u := q[len(q)-1]
		q = q[:len(q)-1]
		o.g.OutNeighbors(u, func(v ids.NodeID) {
			if o.visited[v] != gen {
				o.visited[v] = gen
				dst.add(v)
				q = append(q, v)
			}
		})
	}
	o.queue = q[:0]
	return dst.Len()
}

// expand runs a BFS from the queued frontier, skipping nodes in rs, and
// returns the newly discovered nodes (including the frontier itself).
// Assumes frontier nodes are stamped with gen and not in rs.
func (o *Oracle) expand(q []ids.NodeID, gen uint32, rs *ReachSet) []ids.NodeID {
	delta := o.delta[:0]
	delta = append(delta, q...)
	for len(q) > 0 {
		u := q[len(q)-1]
		q = q[:len(q)-1]
		o.g.OutNeighbors(u, func(w ids.NodeID) {
			if o.visited[w] == gen || rs.Contains(w) {
				return
			}
			o.visited[w] = gen
			delta = append(delta, w)
			q = append(q, w)
		})
	}
	o.queue = q[:0]
	o.delta = delta
	return delta
}

// MarginalGain evaluates f(S∪{v}) − f(S) given the materialized, current
// R(S). Because R(S) is closed under reachability, the BFS from v never
// needs to expand a node already in rs. One oracle call.
//
// When merge is true the newly reached nodes are added to rs, turning it
// into R(S∪{v}) — callers use this when the sieve accepts v.
func (o *Oracle) MarginalGain(rs *ReachSet, v ids.NodeID, merge bool) int {
	o.calls.Inc()
	if rs.Contains(v) {
		return 0
	}
	gen := o.nextGen()
	o.grow(int(v) + 1)
	q := append(o.queue[:0], v)
	o.visited[v] = gen
	delta := o.expand(q, gen, rs)
	if merge {
		for _, n := range delta {
			rs.add(n)
		}
	}
	return len(delta)
}

// Update re-evaluates R(S) in place after new edges were added to the
// graph: for each edge (u,w) whose source u is already in R(S),
// everything reachable from w joins R(S). Counted as one oracle call if a
// re-evaluation was needed, zero otherwise — matching the paper's
// "number of evaluations of f_t". Returns true if the set grew.
func (o *Oracle) Update(rs *ReachSet, edges []Endpoints) bool {
	gen := o.nextGen()
	q := o.queue[:0]
	for _, e := range edges {
		if rs.Contains(e.Src) && !rs.Contains(e.Dst) && o.visited[e.Dst] != gen {
			o.visited[e.Dst] = gen
			q = append(q, e.Dst)
		}
	}
	if len(q) == 0 {
		o.queue = q
		return false
	}
	o.calls.Inc()
	delta := o.expand(q, gen, rs)
	for _, n := range delta {
		rs.add(n)
	}
	return len(delta) > 0
}

// Affected returns every node whose influence spread may have changed
// after edges with the given source endpoints were inserted: all nodes
// that can reach any source (the paper's V̄_t, Alg. 1 line 3). Computed
// with one multi-source reverse BFS; it is graph bookkeeping, not an f_t
// evaluation, so it does not count as an oracle call.
func (o *Oracle) Affected(sources []ids.NodeID) []ids.NodeID {
	gen := o.nextGen()
	q := o.queue[:0]
	var out []ids.NodeID
	for _, s := range sources {
		if o.visited[s] != gen {
			o.visited[s] = gen
			out = append(out, s)
			q = append(q, s)
		}
	}
	for len(q) > 0 {
		u := q[len(q)-1]
		q = q[:len(q)-1]
		o.g.InNeighbors(u, func(v ids.NodeID) {
			if o.visited[v] != gen {
				o.visited[v] = gen
				out = append(out, v)
				q = append(q, v)
			}
		})
	}
	o.queue = q[:0]
	return out
}
