package influence

import (
	"math/rand"
	"testing"

	"tdnstream/internal/graph"
	"tdnstream/internal/ids"
	"tdnstream/internal/metrics"
	"tdnstream/internal/testutil"
)

// buildADN loads an adjacency map into a fresh ADN.
func buildADN(adj map[ids.NodeID][]ids.NodeID) *graph.ADN {
	g := graph.NewADN()
	for u, vs := range adj {
		for _, v := range vs {
			g.AddEdge(u, v)
		}
	}
	return g
}

func TestSpreadMatchesNaiveReach(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		adj := testutil.RandomDigraphAdjacency(rng, 20, 0.1)
		g := buildADN(adj)
		o := New(g, nil)
		for rep := 0; rep < 10; rep++ {
			var seeds []ids.NodeID
			for i := 0; i < 1+rng.Intn(3); i++ {
				seeds = append(seeds, ids.NodeID(rng.Intn(20)))
			}
			want := testutil.Reach(adj, seeds)
			got := o.Spread(seeds...)
			if got != want {
				t.Fatalf("trial %d: Spread(%v) = %d, want %d", trial, seeds, got, want)
			}
		}
	}
}

func TestSpreadEmptySeedsIsZero(t *testing.T) {
	g := buildADN(map[ids.NodeID][]ids.NodeID{1: {2}})
	o := New(g, nil)
	if got := o.Spread(); got != 0 {
		t.Fatalf("f(∅) = %d, want 0 (normalized)", got)
	}
}

func TestSpreadCountsSeedsOnceWithDuplicates(t *testing.T) {
	g := buildADN(map[ids.NodeID][]ids.NodeID{1: {2}})
	o := New(g, nil)
	if got := o.Spread(1, 1, 2); got != 2 {
		t.Fatalf("Spread(1,1,2) = %d, want 2", got)
	}
}

// Theorem 1: f_t is monotone and submodular. Property-tested on random
// digraphs: for random S ⊆ T and x ∉ T,
// f(S) ≤ f(T) and f(S∪{x})-f(S) ≥ f(T∪{x})-f(T).
func TestMonotoneSubmodular(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 16
	for trial := 0; trial < 300; trial++ {
		adj := testutil.RandomDigraphAdjacency(rng, n, 0.08)
		g := buildADN(adj)
		if g.NodeCap() == 0 {
			continue
		}
		o := New(g, nil)
		// random S ⊆ T ⊆ V, x ∉ T
		var S, T []ids.NodeID
		for v := 0; v < n; v++ {
			r := rng.Float64()
			if r < 0.2 {
				S = append(S, ids.NodeID(v))
				T = append(T, ids.NodeID(v))
			} else if r < 0.4 {
				T = append(T, ids.NodeID(v))
			}
		}
		x := ids.NodeID(rng.Intn(n))
		inT := false
		for _, v := range T {
			if v == x {
				inT = true
			}
		}
		if inT {
			continue
		}
		fS := o.Spread(S...)
		fT := o.Spread(T...)
		if fS > fT {
			t.Fatalf("monotonicity violated: f(S)=%d > f(T)=%d", fS, fT)
		}
		gainS := o.Spread(append(append([]ids.NodeID{}, S...), x)...) - fS
		gainT := o.Spread(append(append([]ids.NodeID{}, T...), x)...) - fT
		if gainS < gainT {
			t.Fatalf("submodularity violated: δ_S(x)=%d < δ_T(x)=%d", gainS, gainT)
		}
	}
}

func TestFillReachSetClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	adj := testutil.RandomDigraphAdjacency(rng, 30, 0.08)
	g := buildADN(adj)
	o := New(g, nil)
	rs := NewReachSet()
	n := o.FillReachSet(rs, 0, 1)
	if n != rs.Len() {
		t.Fatalf("returned %d but Len()=%d", n, rs.Len())
	}
	// closure: every out-neighbor of a member is a member
	rs.ForEach(func(u ids.NodeID) {
		g.OutNeighbors(u, func(v ids.NodeID) {
			if !rs.Contains(v) {
				t.Fatalf("reach set not closed: %d ∈ R but %d ∉ R", u, v)
			}
		})
	})
}

// MarginalGain must equal f(S∪{v}) − f(S) computed from scratch, for all v.
func TestMarginalGainExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		adj := testutil.RandomDigraphAdjacency(rng, 18, 0.1)
		g := buildADN(adj)
		if g.NodeCap() == 0 {
			continue
		}
		o := New(g, nil)
		seeds := []ids.NodeID{ids.NodeID(rng.Intn(18)), ids.NodeID(rng.Intn(18))}
		rs := NewReachSet()
		fS := o.FillReachSet(rs, seeds...)
		for v := ids.NodeID(0); int(v) < 18; v++ {
			want := testutil.Reach(adj, append(append([]ids.NodeID{}, seeds...), v)) - fS
			got := o.MarginalGain(rs, v, false)
			if got != want {
				t.Fatalf("trial %d: δ_S(%d) = %d, want %d", trial, v, got, want)
			}
		}
	}
}

func TestMarginalGainMerge(t *testing.T) {
	g := buildADN(map[ids.NodeID][]ids.NodeID{1: {2}, 3: {4, 5}})
	o := New(g, nil)
	rs := NewReachSet()
	o.FillReachSet(rs, 1)
	if gain := o.MarginalGain(rs, 3, true); gain != 3 {
		t.Fatalf("gain = %d, want 3", gain)
	}
	if rs.Len() != 5 {
		t.Fatalf("after merge Len = %d, want 5", rs.Len())
	}
	// rs is now R({1,3}); marginal of 4 must be 0.
	if gain := o.MarginalGain(rs, 4, false); gain != 0 {
		t.Fatalf("gain of covered node = %d, want 0", gain)
	}
}

// Update must bring R(S) to exactly R(S) on the grown graph, and must not
// count an oracle call when no new edge source touches R(S).
func TestUpdateIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		adj := testutil.RandomDigraphAdjacency(rng, 15, 0.08)
		g := buildADN(adj)
		var c metrics.Counter
		o := New(g, &c)
		seeds := []ids.NodeID{ids.NodeID(rng.Intn(15))}
		rs := NewReachSet()
		o.FillReachSet(rs, seeds...)

		// grow the graph with a few random edges
		var eps []Endpoints
		for i := 0; i < 4; i++ {
			u := ids.NodeID(rng.Intn(15))
			v := ids.NodeID(rng.Intn(15))
			if u == v {
				continue
			}
			g.AddEdge(u, v)
			adj[u] = append(adj[u], v)
			eps = append(eps, Endpoints{Src: u, Dst: v})
		}
		before := c.Value()
		o.Update(rs, eps)
		after := c.Value()

		want := testutil.Reach(adj, seeds)
		if rs.Len() != want {
			t.Fatalf("trial %d: after Update Len = %d, want %d", trial, rs.Len(), want)
		}
		// call accounting: at most one call, and zero if nothing relevant
		calls := after - before
		if calls > 1 {
			t.Fatalf("Update cost %d calls, want ≤ 1", calls)
		}
		relevant := false
		for _, e := range eps {
			if rs.Contains(e.Src) && rs.Contains(e.Dst) {
				// could have been relevant; cannot distinguish cheaply here
			}
		}
		_ = relevant
	}
}

func TestUpdateNoRelevantEdgesIsFree(t *testing.T) {
	g := buildADN(map[ids.NodeID][]ids.NodeID{1: {2}, 5: {6}})
	var c metrics.Counter
	o := New(g, &c)
	rs := NewReachSet()
	o.FillReachSet(rs, 1)
	c.Reset()
	g.AddEdge(5, 7)
	if o.Update(rs, []Endpoints{{Src: 5, Dst: 7}}) {
		t.Fatal("Update grew on an irrelevant edge")
	}
	if c.Value() != 0 {
		t.Fatalf("irrelevant update cost %d calls, want 0", c.Value())
	}
}

// Affected must return exactly the nodes whose spread changed, which for
// edge insertions (u,v) is {x : u ∈ R({x})}.
func TestAffectedExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 60; trial++ {
		adj := testutil.RandomDigraphAdjacency(rng, 15, 0.1)
		g := buildADN(adj)
		if g.NodeCap() == 0 {
			continue
		}
		o := New(g, nil)
		src := ids.NodeID(rng.Intn(15))
		got := o.Affected([]ids.NodeID{src})
		gotSet := make(map[ids.NodeID]bool, len(got))
		for _, n := range got {
			gotSet[n] = true
		}
		for x := ids.NodeID(0); int(x) < 15; x++ {
			// does x reach src?
			reaches := false
			visited := map[ids.NodeID]bool{x: true}
			stack := []ids.NodeID{x}
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if u == src {
					reaches = true
					break
				}
				for _, v := range adj[u] {
					if !visited[v] {
						visited[v] = true
						stack = append(stack, v)
					}
				}
			}
			if reaches != gotSet[x] {
				t.Fatalf("trial %d: node %d reaches %d = %v but Affected says %v",
					trial, x, src, reaches, gotSet[x])
			}
		}
	}
}

func TestOracleCallAccounting(t *testing.T) {
	g := buildADN(map[ids.NodeID][]ids.NodeID{1: {2}})
	var c metrics.Counter
	o := New(g, &c)
	o.Spread(1)
	rs := NewReachSet()
	o.FillReachSet(rs, 1)
	o.MarginalGain(rs, 2, false)
	if c.Value() != 3 {
		t.Fatalf("3 evaluations should count 3 calls, got %d", c.Value())
	}
	o.Affected([]ids.NodeID{1}) // bookkeeping: free
	if c.Value() != 3 {
		t.Fatalf("Affected must not count calls, got %d", c.Value())
	}
}

func TestReachSetCloneIndependent(t *testing.T) {
	g := buildADN(map[ids.NodeID][]ids.NodeID{1: {2, 3}})
	o := New(g, nil)
	rs := NewReachSet()
	o.FillReachSet(rs, 1)
	c := rs.Clone()
	g.AddEdge(3, 4)
	o.Update(rs, []Endpoints{{Src: 3, Dst: 4}})
	if rs.Len() != 4 || c.Len() != 3 {
		t.Fatalf("clone aliased: rs=%d clone=%d", rs.Len(), c.Len())
	}
}

func TestVisitedGrowsWithGraph(t *testing.T) {
	g := graph.NewADN()
	g.AddEdge(1, 2)
	o := New(g, nil)
	if got := o.Spread(1); got != 2 {
		t.Fatalf("Spread = %d", got)
	}
	// Much larger ids after the oracle exists: scratch must grow.
	g.AddEdge(100000, 100001)
	if got := o.Spread(100000); got != 2 {
		t.Fatalf("Spread after growth = %d", got)
	}
}
