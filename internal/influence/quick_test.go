package influence

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tdnstream/internal/graph"
	"tdnstream/internal/ids"
)

// randomGraphAndSets builds a random digraph plus two random node sets.
func randomGraphAndSets(seed int64) (*graph.ADN, []ids.NodeID, []ids.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewADN()
	const n = 14
	for i := 0; i < 30; i++ {
		u := ids.NodeID(rng.Intn(n))
		v := ids.NodeID(rng.Intn(n))
		g.AddEdge(u, v)
	}
	pick := func() []ids.NodeID {
		var out []ids.NodeID
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.25 {
				out = append(out, ids.NodeID(v))
			}
		}
		return out
	}
	return g, pick(), pick()
}

// Property: f(∅)=0, f monotone under set union, and the union bound
// f(S∪T) ≤ f(S)+f(T) (all implied by f = |R(·)| but checked end-to-end
// through the oracle machinery).
func TestQuickSpreadSetAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		g, S, T := randomGraphAndSets(seed)
		if g.NodeCap() == 0 {
			return true
		}
		o := New(g, nil)
		if o.Spread() != 0 {
			return false
		}
		fS := o.Spread(S...)
		fT := o.Spread(T...)
		union := append(append([]ids.NodeID{}, S...), T...)
		fU := o.Spread(union...)
		if fU < fS || fU < fT { // monotone
			return false
		}
		if fU > fS+fT { // union bound
			return false
		}
		return fS >= 0 && (len(S) == 0) == (fS == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: FillReachSet and Spread agree, and the reach set is closed
// under one-step expansion.
func TestQuickReachSetAgreesWithSpread(t *testing.T) {
	f := func(seed int64) bool {
		g, S, _ := randomGraphAndSets(seed)
		if g.NodeCap() == 0 || len(S) == 0 {
			return true
		}
		o := New(g, nil)
		rs := NewReachSet()
		n := o.FillReachSet(rs, S...)
		if n != o.Spread(S...) || n != rs.Len() {
			return false
		}
		closed := true
		rs.ForEach(func(u ids.NodeID) {
			g.OutNeighbors(u, func(v ids.NodeID) {
				if !rs.Contains(v) {
					closed = false
				}
			})
		})
		return closed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: for every node v, MarginalGain(R(S), v) = f(S∪{v}) − f(S),
// and merging yields exactly R(S∪{v}).
func TestQuickMarginalGainConsistent(t *testing.T) {
	f := func(seed int64, vRaw uint8) bool {
		g, S, _ := randomGraphAndSets(seed)
		if g.NodeCap() == 0 || len(S) == 0 {
			return true
		}
		v := ids.NodeID(int(vRaw) % 14)
		o := New(g, nil)
		rs := NewReachSet()
		fS := o.FillReachSet(rs, S...)
		gain := o.MarginalGain(rs, v, true) // merge
		fSv := o.Spread(append(append([]ids.NodeID{}, S...), v)...)
		if fS+gain != fSv {
			return false
		}
		return rs.Len() == fSv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Update after random edge insertions leaves R(S) equal to a
// from-scratch recomputation.
func TestQuickUpdateEqualsRecompute(t *testing.T) {
	f := func(seed int64) bool {
		g, S, _ := randomGraphAndSets(seed)
		if g.NodeCap() == 0 || len(S) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		o := New(g, nil)
		rs := NewReachSet()
		o.FillReachSet(rs, S...)
		var eps []Endpoints
		for i := 0; i < 5; i++ {
			u := ids.NodeID(rng.Intn(14))
			v := ids.NodeID(rng.Intn(14))
			if u == v {
				continue
			}
			if g.AddEdge(u, v) {
				eps = append(eps, Endpoints{Src: u, Dst: v})
			}
		}
		o.Update(rs, eps)
		fresh := NewReachSet()
		o.FillReachSet(fresh, S...)
		if rs.Len() != fresh.Len() {
			return false
		}
		same := true
		fresh.ForEach(func(n ids.NodeID) {
			if !rs.Contains(n) {
				same = false
			}
		})
		return same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
