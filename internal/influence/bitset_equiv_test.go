package influence

import (
	"math/rand"
	"testing"

	"tdnstream/internal/graph"
	"tdnstream/internal/ids"
)

// refSet is the pre-bitset reference ReachSet: a plain hash set with a
// deep clone. The property test drives it in lockstep with the bitset
// implementation through the oracle's own mutation paths.
type refSet map[ids.NodeID]struct{}

// TestAffectedUnseenSource pins the contract shared by every entry
// point: querying a node id the graph has never seen must not panic —
// the scratch grows for explicit arguments (f of an absent node is 1,
// and the only node reaching an absent node is itself).
func TestAffectedUnseenSource(t *testing.T) {
	g := graph.NewADN()
	g.AddEdge(1, 2)
	o := New(g, nil)
	got := o.Affected([]ids.NodeID{900})
	if len(got) != 1 || got[0] != 900 {
		t.Fatalf("Affected(unseen) = %v, want [900]", got)
	}
}

// TestQuickBitsetReachSetEquivalence grows a random graph while
// maintaining one candidate reach set through FillReachSet, Update and
// merging MarginalGain — exactly the sieve's usage — and mirrors every
// observable of the bitset set against the reference hash set.
func TestQuickBitsetReachSetEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Node ids stretch past several 64-bit words, including ids the
		// graph has never seen (bitset must grow on demand).
		const n = 400
		g := graph.NewADN()
		o := New(g, nil)
		rs := NewReachSet()
		ref := refSet{}

		refill := func() {
			seeds := []ids.NodeID{ids.NodeID(rng.Intn(n)), ids.NodeID(rng.Intn(n))}
			o.FillReachSet(rs, seeds...)
			clear(ref)
			for _, s := range seeds {
				ref[s] = struct{}{}
			}
			// Naive closure: iterate until fixpoint.
			for changed := true; changed; {
				changed = false
				g.Pairs(func(u, v ids.NodeID) {
					if _, ok := ref[u]; ok {
						if _, ok := ref[v]; !ok {
							ref[v] = struct{}{}
							changed = true
						}
					}
				})
			}
		}
		refill()

		for op := 0; op < 800; op++ {
			switch rng.Intn(10) {
			case 0:
				refill()
			case 1:
				// Merging marginal gain: rs must become R(S ∪ {v}).
				v := ids.NodeID(rng.Intn(n))
				before := rs.Len()
				gain := o.MarginalGain(rs, v, true)
				if rs.Len() != before+gain {
					t.Fatalf("seed %d op %d: merge gain %d but Len %d→%d", seed, op, gain, before, rs.Len())
				}
				ref[v] = struct{}{}
				for changed := true; changed; {
					changed = false
					g.Pairs(func(a, b ids.NodeID) {
						if _, ok := ref[a]; ok {
							if _, ok := ref[b]; !ok {
								ref[b] = struct{}{}
								changed = true
							}
						}
					})
				}
			default:
				// Feed an edge and refresh incrementally via Update.
				u := ids.NodeID(rng.Intn(n))
				v := ids.NodeID(rng.Intn(n))
				if g.AddEdge(u, v) {
					o.Update(rs, []Endpoints{{Src: u, Dst: v}})
					if _, ok := ref[u]; ok {
						for changed := true; changed; {
							changed = false
							g.Pairs(func(a, b ids.NodeID) {
								if _, ok := ref[a]; ok {
									if _, ok := ref[b]; !ok {
										ref[b] = struct{}{}
										changed = true
									}
								}
							})
						}
					}
				}
			}

			if rs.Len() != len(ref) {
				t.Fatalf("seed %d op %d: Len = %d, want %d", seed, op, rs.Len(), len(ref))
			}
			for m := range ref {
				if !rs.Contains(m) {
					t.Fatalf("seed %d op %d: missing member %d", seed, op, m)
				}
			}
			visited := 0
			last := ids.NodeID(0)
			rs.ForEach(func(m ids.NodeID) {
				if visited > 0 && m <= last {
					t.Fatalf("seed %d op %d: ForEach not ascending (%d after %d)", seed, op, m, last)
				}
				last = m
				visited++
				if _, ok := ref[m]; !ok {
					t.Fatalf("seed %d op %d: ForEach visited non-member %d", seed, op, m)
				}
			})
			if visited != len(ref) {
				t.Fatalf("seed %d op %d: ForEach visited %d, want %d", seed, op, visited, len(ref))
			}
		}

		// Clone independence: mutating the clone leaves the original (and
		// vice versa) untouched, matching the old deep-copy semantics.
		c := rs.Clone()
		if c.Len() != rs.Len() {
			t.Fatalf("seed %d: clone Len = %d, want %d", seed, c.Len(), rs.Len())
		}
		grown := o.MarginalGain(c, ids.NodeID(n+64), true) // new isolated node
		if grown != 1 || c.Len() != rs.Len()+1 || rs.Contains(ids.NodeID(n+64)) {
			t.Fatalf("seed %d: clone mutation leaked (gain=%d)", seed, grown)
		}
		c.Reset()
		if c.Len() != 0 || rs.Len() != len(ref) {
			t.Fatalf("seed %d: Reset leaked across clone", seed)
		}
		c.ForEach(func(m ids.NodeID) { t.Fatalf("seed %d: reset set visited %d", seed, m) })
	}
}
