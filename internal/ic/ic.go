// Package ic provides the independent-cascade (IC) substrate used by the
// RIS-family baselines (DIM, IMM, TIM+).
//
// The paper's evaluation (§V-C) derives diffusion probabilities from
// interaction multiplicity: if node u imposed x live interactions on node
// v, edge (u,v) gets
//
//	p_uv = 2/(1+exp(−0.2·x)) − 1
//
// (≈ 0.10 for x=1, saturating toward 1 as x grows). WGraph snapshots a
// TDN into a weighted digraph with both adjacency directions — forward
// for Monte-Carlo simulation, reverse for RR-set sampling.
package ic

import (
	"math"
	"math/rand"

	"tdnstream/internal/graph"
	"tdnstream/internal/ids"
)

// Prob converts a live interaction multiplicity into the paper's IC edge
// probability: 2/(1+e^{−0.2x}) − 1. Zero multiplicity yields 0.
func Prob(x int) float64 {
	if x <= 0 {
		return 0
	}
	return 2/(1+math.Exp(-0.2*float64(x))) - 1
}

// WEdge is one weighted endpoint.
type WEdge struct {
	To ids.NodeID
	P  float64
}

// WGraph is a weighted snapshot of a TDN under the IC model.
type WGraph struct {
	Nodes []ids.NodeID // live nodes, ascending
	Out   map[ids.NodeID][]WEdge
	In    map[ids.NodeID][]WEdge
	Cap   int // exclusive upper bound on node ids
}

// Snapshot builds a weighted graph from the live edges of g.
func Snapshot(g *graph.TDN) *WGraph {
	w := &WGraph{
		Nodes: g.SortedNodes(),
		Out:   make(map[ids.NodeID][]WEdge),
		In:    make(map[ids.NodeID][]WEdge),
		Cap:   g.NodeCap(),
	}
	for _, u := range w.Nodes {
		g.OutNeighbors(u, func(v ids.NodeID) {
			p := Prob(g.Multiplicity(u, v))
			w.Out[u] = append(w.Out[u], WEdge{To: v, P: p})
			w.In[v] = append(w.In[v], WEdge{To: u, P: p})
		})
	}
	return w
}

// N returns the number of live nodes.
func (w *WGraph) N() int { return len(w.Nodes) }

// MonteCarloSpread estimates the expected IC spread of seeds by forward
// simulation over rounds trials. Used by tests to validate the RR-set
// estimator and by quality harnesses when an IC-ground-truth is wanted.
func (w *WGraph) MonteCarloSpread(seeds []ids.NodeID, rounds int, rng *rand.Rand) float64 {
	if rounds <= 0 {
		return 0
	}
	active := make([]bool, w.Cap)
	var frontier, next []ids.NodeID
	total := 0
	for r := 0; r < rounds; r++ {
		for i := range active {
			active[i] = false
		}
		frontier = frontier[:0]
		count := 0
		for _, s := range seeds {
			if int(s) < len(active) && !active[s] {
				active[s] = true
				frontier = append(frontier, s)
				count++
			}
		}
		for len(frontier) > 0 {
			next = next[:0]
			for _, u := range frontier {
				for _, e := range w.Out[u] {
					if !active[e.To] && rng.Float64() < e.P {
						active[e.To] = true
						next = append(next, e.To)
						count++
					}
				}
			}
			frontier, next = next, frontier
		}
		total += count
	}
	return float64(total) / float64(rounds)
}
