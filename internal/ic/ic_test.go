package ic

import (
	"math"
	"math/rand"
	"testing"

	"tdnstream/internal/graph"
	"tdnstream/internal/ids"
	"tdnstream/internal/stream"
)

func TestProb(t *testing.T) {
	if Prob(0) != 0 {
		t.Fatalf("Prob(0) = %g, want 0", Prob(0))
	}
	if Prob(-3) != 0 {
		t.Fatal("negative multiplicity must give 0")
	}
	// p(1) = 2/(1+e^{-0.2}) − 1 ≈ 0.0997
	if got := Prob(1); math.Abs(got-0.0997) > 1e-3 {
		t.Fatalf("Prob(1) = %g, want ≈ 0.0997", got)
	}
	prev := 0.0
	for x := 1; x <= 50; x++ {
		p := Prob(x)
		if p <= prev || p >= 1 {
			t.Fatalf("Prob(%d) = %g not strictly increasing in (0,1)", x, p)
		}
		prev = p
	}
	if Prob(100) < 0.999 {
		t.Fatalf("Prob(100) = %g, want ≈ 1", Prob(100))
	}
}

func buildTDN(t *testing.T, edges []stream.Edge) *graph.TDN {
	t.Helper()
	g := graph.NewTDN(0)
	if err := g.AdvanceTo(1); err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := g.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestSnapshot(t *testing.T) {
	g := buildTDN(t, []stream.Edge{
		{Src: 1, Dst: 2, T: 1, Lifetime: 5},
		{Src: 1, Dst: 2, T: 1, Lifetime: 5}, // multiplicity 2
		{Src: 2, Dst: 3, T: 1, Lifetime: 5},
	})
	w := Snapshot(g)
	if w.N() != 3 {
		t.Fatalf("N = %d, want 3", w.N())
	}
	if len(w.Out[1]) != 1 || w.Out[1][0].To != 2 {
		t.Fatalf("Out[1] = %+v", w.Out[1])
	}
	if got, want := w.Out[1][0].P, Prob(2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("p(1→2) = %g, want %g (multiplicity 2)", got, want)
	}
	if len(w.In[2]) != 1 || w.In[2][0].To != 1 {
		t.Fatalf("In[2] = %+v", w.In[2])
	}
	if math.Abs(w.In[2][0].P-w.Out[1][0].P) > 1e-12 {
		t.Fatal("forward and reverse probabilities disagree")
	}
}

// MC spread of a deterministic chain (p≈1) approaches the chain length;
// with p≈0 it approaches the seed count.
func TestMonteCarloSpreadExtremes(t *testing.T) {
	var hot []stream.Edge
	for i := 0; i < 30; i++ { // multiplicity 30 → p ≈ 0.995
		hot = append(hot, stream.Edge{Src: 1, Dst: 2, T: 1, Lifetime: 5})
		hot = append(hot, stream.Edge{Src: 2, Dst: 3, T: 1, Lifetime: 5})
	}
	w := Snapshot(buildTDN(t, hot))
	rng := rand.New(rand.NewSource(1))
	if got := w.MonteCarloSpread([]ids.NodeID{1}, 2000, rng); got < 2.9 {
		t.Fatalf("hot chain spread = %g, want ≈ 3", got)
	}
	cold := Snapshot(buildTDN(t, []stream.Edge{
		{Src: 1, Dst: 2, T: 1, Lifetime: 5},
		{Src: 2, Dst: 3, T: 1, Lifetime: 5},
	}))
	if got := cold.MonteCarloSpread([]ids.NodeID{1}, 2000, rng); got > 1.3 {
		t.Fatalf("cold chain spread = %g, want ≈ 1.1", got)
	}
}

// Analytic check: star hub with p on each of d spokes has expected spread
// 1 + d·p.
func TestMonteCarloSpreadAnalytic(t *testing.T) {
	const d = 10
	var edges []stream.Edge
	for i := 2; i < 2+d; i++ {
		edges = append(edges, stream.Edge{Src: 1, Dst: ids.NodeID(i), T: 1, Lifetime: 5})
	}
	w := Snapshot(buildTDN(t, edges))
	p := Prob(1)
	want := 1 + d*p
	rng := rand.New(rand.NewSource(2))
	got := w.MonteCarloSpread([]ids.NodeID{1}, 20000, rng)
	if math.Abs(got-want) > 0.15 {
		t.Fatalf("spread = %g, want ≈ %g", got, want)
	}
}
