package graph

import (
	"math/rand"
	"testing"

	"tdnstream/internal/ids"
	"tdnstream/internal/stream"
	"tdnstream/internal/testutil"
)

// TestPaperFig2 reproduces the worked example of the paper's Figure 2:
// nine edges with explicit lifetimes; the alive edge sets at time t and
// t+1 must match the figure exactly.
func TestPaperFig2(t *testing.T) {
	const u1, u2, u3, u4, u5, u6, u7 = 1, 2, 3, 4, 5, 6, 7
	const t0 = int64(100) // the figure's "t"
	g := NewTDN(t0)
	add := func(u, v ids.NodeID, tt int64, l int) {
		t.Helper()
		if err := g.Add(stream.Edge{Src: u, Dst: v, T: tt, Lifetime: l}); err != nil {
			t.Fatal(err)
		}
	}
	// Edges arriving at time t (e1..e6).
	add(u1, u2, t0, 1)
	add(u1, u3, t0, 1)
	add(u1, u4, t0, 2)
	add(u5, u3, t0, 3)
	add(u6, u4, t0, 1)
	add(u6, u7, t0, 1)

	// G_t: all six edges alive, all seven nodes present.
	if g.NumAliveEdges() != 6 {
		t.Fatalf("G_t alive edges = %d, want 6", g.NumAliveEdges())
	}
	if g.NumNodes() != 7 {
		t.Fatalf("G_t nodes = %d, want 7", g.NumNodes())
	}

	// Advance to t+1: e1,e2,e5,e6 (lifetime 1) expire; add e7,e8,e9.
	if err := g.AdvanceTo(t0 + 1); err != nil {
		t.Fatal(err)
	}
	add(u5, u2, t0+1, 1)
	add(u7, u4, t0+1, 2)
	add(u7, u6, t0+1, 3)

	// G_{t+1} per the figure: e3 (u1→u4, lifetime now 1), e4 (u5→u3, now 2),
	// e7, e8, e9.
	if g.NumAliveEdges() != 5 {
		t.Fatalf("G_{t+1} alive edges = %d, want 5", g.NumAliveEdges())
	}
	wantPairs := map[[2]ids.NodeID]bool{
		{u1, u4}: true, {u5, u3}: true, {u5, u2}: true, {u7, u4}: true, {u7, u6}: true,
	}
	g.ForEachLiveEdge(func(e stream.Edge) {
		if !wantPairs[[2]ids.NodeID{e.Src, e.Dst}] {
			t.Fatalf("unexpected live edge %d→%d", e.Src, e.Dst)
		}
		delete(wantPairs, [2]ids.NodeID{e.Src, e.Dst})
	})
	if len(wantPairs) != 0 {
		t.Fatalf("missing live edges: %v", wantPairs)
	}
	// u1 must still be present (e3 alive) but after t+2 it disappears.
	if err := g.AdvanceTo(t0 + 2); err != nil {
		t.Fatal(err)
	}
	alive := map[ids.NodeID]bool{}
	g.Nodes(func(n ids.NodeID) { alive[n] = true })
	if alive[u1] {
		t.Fatal("u1 should be gone at t+2 (its last edge e3 expired)")
	}
	if !alive[u5] || !alive[u3] {
		t.Fatal("e4 (u5→u3, lifetime 3) should still be alive at t+2")
	}
}

func TestTDNValidation(t *testing.T) {
	g := NewTDN(0)
	if err := g.Add(stream.Edge{Src: 1, Dst: 1, T: 0, Lifetime: 1}); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.Add(stream.Edge{Src: 1, Dst: 2, T: 0, Lifetime: 0}); err == nil {
		t.Fatal("zero lifetime accepted")
	}
	if err := g.Add(stream.Edge{Src: 1, Dst: 2, T: 5, Lifetime: 1}); err == nil {
		t.Fatal("future-timestamped edge accepted")
	}
	if err := g.AdvanceTo(-3); err == nil {
		t.Fatal("rewind accepted")
	}
}

func TestTDNMultiplicity(t *testing.T) {
	g := NewTDN(0)
	for i := 0; i < 3; i++ {
		if err := g.Add(stream.Edge{Src: 1, Dst: 2, T: 0, Lifetime: 2 + i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.Multiplicity(1, 2); got != 3 {
		t.Fatalf("Multiplicity = %d, want 3", got)
	}
	if err := g.AdvanceTo(2); err != nil { // first copy (lifetime 2) expires at t=2
		t.Fatal(err)
	}
	if got := g.Multiplicity(1, 2); got != 2 {
		t.Fatalf("after expiry Multiplicity = %d, want 2", got)
	}
	// Out-neighbor iteration still visits v exactly once.
	n := 0
	g.OutNeighbors(1, func(ids.NodeID) { n++ })
	if n != 1 {
		t.Fatalf("OutNeighbors visited %d, want 1", n)
	}
}

func TestTDNExpiryRange(t *testing.T) {
	g := NewTDN(10)
	for l := 1; l <= 5; l++ {
		if err := g.Add(stream.Edge{Src: ids.NodeID(l), Dst: ids.NodeID(l + 10), T: 10, Lifetime: l}); err != nil {
			t.Fatal(err)
		}
	}
	// Edges with remaining lifetime in [2,4) at t=10 → expiry in [12,14).
	var got []int
	g.ForEachEdgeExpiringIn(12, 14, func(e stream.Edge) { got = append(got, e.Lifetime) })
	if len(got) != 2 || (got[0] != 2 && got[1] != 2) || (got[0] != 3 && got[1] != 3) {
		t.Fatalf("expiry range visited lifetimes %v, want [2 3]", got)
	}
	// Wide range should cover everything alive.
	count := 0
	g.ForEachEdgeExpiringIn(0, 1<<40, func(stream.Edge) { count++ })
	if count != 5 {
		t.Fatalf("wide range visited %d, want 5", count)
	}
}

// Property test: TDN matches the naive rescan simulator on a random
// stream with random lifetimes — alive pair multiset and alive node set
// agree at every step.
func TestTDNMatchesNaiveSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := NewTDN(0)
	naive := &testutil.NaiveTDN{}
	for step := int64(1); step <= 200; step++ {
		if err := g.AdvanceTo(step); err != nil {
			t.Fatal(err)
		}
		naive.AdvanceTo(step)
		for i := 0; i < rng.Intn(5); i++ {
			u := ids.NodeID(rng.Intn(20))
			v := ids.NodeID(rng.Intn(20))
			if u == v {
				continue
			}
			e := stream.Edge{Src: u, Dst: v, T: step, Lifetime: 1 + rng.Intn(8)}
			if err := g.Add(e); err != nil {
				t.Fatal(err)
			}
			naive.Add(e)
		}
		wantPairs := naive.AlivePairs()
		gotPairs := make(map[uint64]int)
		g.ForEachLiveEdge(func(e stream.Edge) { gotPairs[ids.EdgeKey(e.Src, e.Dst)]++ })
		if len(gotPairs) != len(wantPairs) {
			t.Fatalf("t=%d: %d live pairs, want %d", step, len(gotPairs), len(wantPairs))
		}
		for k, c := range wantPairs {
			if gotPairs[k] != c {
				u, v := ids.SplitEdgeKey(k)
				t.Fatalf("t=%d: pair %d→%d count %d, want %d", step, u, v, gotPairs[k], c)
			}
		}
		wantNodes := naive.AliveNodes()
		if g.NumNodes() != len(wantNodes) {
			t.Fatalf("t=%d: %d nodes, want %d", step, g.NumNodes(), len(wantNodes))
		}
		// Adjacency counts must round-trip with multiplicity.
		for k, c := range wantPairs {
			u, v := ids.SplitEdgeKey(k)
			if g.Multiplicity(u, v) != c {
				t.Fatalf("t=%d: multiplicity(%d,%d) = %d, want %d", step, u, v, g.Multiplicity(u, v), c)
			}
		}
	}
}

// Paper §II-B: with geometric lifetimes Geo(p) and m arrivals per step the
// expected live-edge count is bounded by ~m/p. Spot check the memory bound.
func TestTDNGeometricMemoryBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const p, m = 0.05, 20
	g := NewTDN(0)
	geoLifetime := func() int {
		l := 1
		for rng.Float64() > p && l < 10000 {
			l++
		}
		return l
	}
	maxAlive := 0
	for step := int64(1); step <= 800; step++ {
		if err := g.AdvanceTo(step); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < m; i++ {
			u := ids.NodeID(rng.Intn(1000))
			v := ids.NodeID(rng.Intn(1000))
			if u == v {
				continue
			}
			if err := g.Add(stream.Edge{Src: u, Dst: v, T: step, Lifetime: geoLifetime()}); err != nil {
				t.Fatal(err)
			}
		}
		if g.NumAliveEdges() > maxAlive {
			maxAlive = g.NumAliveEdges()
		}
	}
	bound := int(3 * float64(m) / p) // 3× the O(m/p) expectation
	if maxAlive > bound {
		t.Fatalf("alive edges peaked at %d, exceeding 3×(m/p) = %d", maxAlive, bound)
	}
	if maxAlive < int(0.5*float64(m)/p) {
		t.Fatalf("alive edges peaked at %d — suspiciously below m/p = %d; expiry too aggressive?", maxAlive, int(float64(m)/p))
	}
}
