package graph

// Memory accounting for the two graph representations. Sizes are walked
// bottom-up from the actual backing arrays (slice capacities, bitset
// words) so the totals track runtime.MemStats growth; map footprints are
// estimated from entry counts and the runtime's bucket layout, which is
// the best a portable accountant can do.

const (
	sliceHeaderBytes = 24 // ptr + len + cap
	nodeIDBytes      = 4  // ids.NodeID is uint32
	edgeBytes        = 24 // stream.Edge: two uint32 + int64 + int, aligned
)

// mapBytes estimates the heap footprint of a Go map with n entries whose
// key+value pair occupies kv bytes: 8-entry buckets each carrying eight
// tophash bytes and an overflow pointer, at roughly 6.5 live entries per
// bucket under the default load factor, plus the map header.
func mapBytes(n, kv int) int64 {
	if n == 0 {
		return 48
	}
	buckets := int64(n)*2/13 + 1
	return 48 + buckets*(16+8*int64(kv))
}

// PageSeen dedupes copy-on-write adjacency pages across ADN clones: a
// HISTAPPROX instance family shares most pages with its neighbors, and
// counting a shared page once per family — not once per instance — is
// what keeps the accountant honest against measured heap growth. Pass one
// set through every SizeBytes call belonging to the same clone family.
type PageSeen map[*adjPage]struct{}

// sizeBytes sums the page table plus every not-yet-seen page: 64 slice
// headers per page and the capacity of each neighbor list.
func (a *adjacency) sizeBytes(seen PageSeen) int64 {
	total := int64(cap(a.pages))*8 + int64(cap(a.owned))
	for _, p := range a.pages {
		if p == nil {
			continue
		}
		if _, ok := seen[p]; ok {
			continue
		}
		seen[p] = struct{}{}
		total += pageSize * sliceHeaderBytes
		for _, s := range p {
			total += int64(cap(s)) * nodeIDBytes
		}
	}
	return total
}

// SizeBytes returns the heap bytes held by the graph's adjacency pages,
// presence bitset and dedup accelerator. seen carries page identity across
// clones so shared copy-on-write pages are counted once per family; pass
// nil for a standalone graph.
func (g *ADN) SizeBytes(seen PageSeen) int64 {
	if seen == nil {
		seen = make(PageSeen)
	}
	total := g.out.sizeBytes(seen) + g.in.sizeBytes(seen)
	total += int64(cap(g.present)) * 8
	total += mapBytes(len(g.dedup), nodeIDBytes+8)
	for _, d := range g.dedup {
		total += mapBytes(len(d), nodeIDBytes)
	}
	return total
}

// NumExpirySlots reports the number of distinct expiry times currently
// holding live edges — the bucket count behind AdvanceTo.
func (g *TDN) NumExpirySlots() int { return len(g.buckets) }

// SizeBytes returns the estimated heap bytes held by the TDN: both
// adjacency maps with their per-node multiplicity maps, the node refcount
// map, and the expiry buckets with their edge payloads.
func (g *TDN) SizeBytes() int64 {
	total := mapBytes(len(g.out), nodeIDBytes+8) + mapBytes(len(g.in), nodeIDBytes+8)
	for _, m := range g.out {
		total += mapBytes(len(m), nodeIDBytes+8)
	}
	for _, m := range g.in {
		total += mapBytes(len(m), nodeIDBytes+8)
	}
	total += mapBytes(len(g.refs), nodeIDBytes+8)
	total += mapBytes(len(g.buckets), 8+sliceHeaderBytes)
	for _, bucket := range g.buckets {
		total += int64(cap(bucket)) * edgeBytes
	}
	return total
}
