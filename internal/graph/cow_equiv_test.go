package graph

import (
	"math/rand"
	"sort"
	"testing"

	"tdnstream/internal/ids"
)

// refADN is the pre-paging reference implementation of the addition-only
// graph: map-of-slices adjacency, a pair-dedup set, and a deep Clone. The
// property tests below drive it in lockstep with the paged copy-on-write
// ADN and require behavioral identity at every step.
type refADN struct {
	out          map[ids.NodeID][]ids.NodeID
	in           map[ids.NodeID][]ids.NodeID
	pairs        map[uint64]struct{}
	nodes        map[ids.NodeID]struct{}
	nodeCap      int
	interactions int
}

func newRefADN() *refADN {
	return &refADN{
		out:   make(map[ids.NodeID][]ids.NodeID),
		in:    make(map[ids.NodeID][]ids.NodeID),
		pairs: make(map[uint64]struct{}),
		nodes: make(map[ids.NodeID]struct{}),
	}
}

func (g *refADN) addEdge(u, v ids.NodeID) bool {
	if u == v {
		return false
	}
	g.interactions++
	for _, n := range [2]ids.NodeID{u, v} {
		g.nodes[n] = struct{}{}
		if int(n)+1 > g.nodeCap {
			g.nodeCap = int(n) + 1
		}
	}
	key := ids.EdgeKey(u, v)
	if _, dup := g.pairs[key]; dup {
		return false
	}
	g.pairs[key] = struct{}{}
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	return true
}

func (g *refADN) clone() *refADN {
	c := newRefADN()
	c.nodeCap = g.nodeCap
	c.interactions = g.interactions
	for u, vs := range g.out {
		c.out[u] = append([]ids.NodeID(nil), vs...)
	}
	for v, us := range g.in {
		c.in[v] = append([]ids.NodeID(nil), us...)
	}
	for k := range g.pairs {
		c.pairs[k] = struct{}{}
	}
	for n := range g.nodes {
		c.nodes[n] = struct{}{}
	}
	return c
}

func sortedIDs(s []ids.NodeID) []ids.NodeID {
	out := append([]ids.NodeID(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkSameGraph asserts full observable equivalence between an ADN and
// the reference.
func checkSameGraph(t *testing.T, tag string, g *ADN, ref *refADN) {
	t.Helper()
	if g.NumEdges() != len(ref.pairs) {
		t.Fatalf("%s: NumEdges = %d, want %d", tag, g.NumEdges(), len(ref.pairs))
	}
	if g.NumNodes() != len(ref.nodes) {
		t.Fatalf("%s: NumNodes = %d, want %d", tag, g.NumNodes(), len(ref.nodes))
	}
	if g.NumInteractions() != ref.interactions {
		t.Fatalf("%s: NumInteractions = %d, want %d", tag, g.NumInteractions(), ref.interactions)
	}
	if g.NodeCap() != ref.nodeCap {
		t.Fatalf("%s: NodeCap = %d, want %d", tag, g.NodeCap(), ref.nodeCap)
	}
	for n := 0; n < ref.nodeCap; n++ {
		u := ids.NodeID(n)
		gotOut := sortedIDs(g.OutSlice(u))
		wantOut := sortedIDs(ref.out[u])
		if len(gotOut) != len(wantOut) {
			t.Fatalf("%s: node %d out-degree = %d, want %d", tag, u, len(gotOut), len(wantOut))
		}
		for i := range gotOut {
			if gotOut[i] != wantOut[i] {
				t.Fatalf("%s: node %d out-neighbors %v, want %v", tag, u, gotOut, wantOut)
			}
		}
		gotIn := sortedIDs(g.InSlice(u))
		wantIn := sortedIDs(ref.in[u])
		if len(gotIn) != len(wantIn) {
			t.Fatalf("%s: node %d in-degree = %d, want %d", tag, u, len(gotIn), len(wantIn))
		}
		for i := range gotIn {
			if gotIn[i] != wantIn[i] {
				t.Fatalf("%s: node %d in-neighbors %v, want %v", tag, u, gotIn, wantIn)
			}
		}
	}
	pairCount := 0
	g.Pairs(func(u, v ids.NodeID) {
		pairCount++
		if _, ok := ref.pairs[ids.EdgeKey(u, v)]; !ok {
			t.Fatalf("%s: Pairs visited absent edge %d→%d", tag, u, v)
		}
	})
	if pairCount != len(ref.pairs) {
		t.Fatalf("%s: Pairs visited %d edges, want %d", tag, pairCount, len(ref.pairs))
	}
	nodeCount := 0
	g.Nodes(func(n ids.NodeID) {
		nodeCount++
		if _, ok := ref.nodes[n]; !ok {
			t.Fatalf("%s: Nodes visited absent node %d", tag, n)
		}
	})
	if nodeCount != len(ref.nodes) {
		t.Fatalf("%s: Nodes visited %d nodes, want %d", tag, nodeCount, len(ref.nodes))
	}
}

// TestQuickADNCoWEquivalence drives a random forest of clones — edges
// interleaved with Clone calls, every copy fed its own divergent stream —
// and checks each (ADN, reference) pair stays observably identical. This
// is the property the copy-on-write page sharing must not break: no write
// to one graph may become visible in any other.
func TestQuickADNCoWEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const n = 220 // spans multiple adjacency pages and bitset words
		type pair struct {
			g   *ADN
			ref *refADN
		}
		pool := []pair{{NewADN(), newRefADN()}}
		for op := 0; op < 1500; op++ {
			p := pool[rng.Intn(len(pool))]
			switch {
			case rng.Float64() < 0.02 && len(pool) < 12:
				pool = append(pool, pair{p.g.Clone(), p.ref.clone()})
			default:
				// Skew sources so some nodes cross dedupScanLimit and some
				// AddEdge calls are duplicates or self-loops.
				u := ids.NodeID(rng.Intn(n) * rng.Intn(2))
				v := ids.NodeID(rng.Intn(n))
				got := p.g.AddEdge(u, v)
				want := p.ref.addEdge(u, v)
				if got != want {
					t.Fatalf("seed %d op %d: AddEdge(%d,%d) = %v, want %v", seed, op, u, v, got, want)
				}
				if hg, hw := p.g.HasEdge(u, v), u != v; hg != hw {
					t.Fatalf("seed %d op %d: HasEdge(%d,%d) = %v, want %v", seed, op, u, v, hg, hw)
				}
			}
		}
		for i, p := range pool {
			checkSameGraph(t, tagOf(seed, i), p.g, p.ref)
		}
	}
}

func tagOf(seed int64, i int) string {
	return "seed " + string(rune('0'+seed)) + " graph " + string(rune('a'+i))
}
