package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tdnstream/internal/ids"
	"tdnstream/internal/stream"
	"tdnstream/internal/testutil"
)

// Property: for any random edge list, the ADN's distinct-pair count
// matches a reference set, out/in adjacency are mirror images, and
// HasEdge agrees with insertion history.
func TestQuickADNInsertion(t *testing.T) {
	f := func(seed int64, nEdges uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewADN()
		ref := make(map[uint64]bool)
		for i := 0; i < int(nEdges); i++ {
			u := ids.NodeID(rng.Intn(12))
			v := ids.NodeID(rng.Intn(12))
			isNew := g.AddEdge(u, v)
			if u == v {
				if isNew {
					return false // self-loops never count as new
				}
				continue
			}
			key := ids.EdgeKey(u, v)
			if isNew == ref[key] {
				return false // novelty report must match history
			}
			ref[key] = true
		}
		if g.NumEdges() != len(ref) {
			return false
		}
		// mirror: v ∈ out(u) ⟺ u ∈ in(v)
		ok := true
		g.Pairs(func(u, v ids.NodeID) {
			foundOut, foundIn := false, false
			g.OutNeighbors(u, func(x ids.NodeID) {
				if x == v {
					foundOut = true
				}
			})
			g.InNeighbors(v, func(x ids.NodeID) {
				if x == u {
					foundIn = true
				}
			})
			if !foundOut || !foundIn || !g.HasEdge(u, v) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cloning then mutating the clone never changes the original's
// pair set.
func TestQuickADNCloneIsolation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewADN()
		for i := 0; i < 20; i++ {
			g.AddEdge(ids.NodeID(rng.Intn(10)), ids.NodeID(rng.Intn(10)))
		}
		before := g.NumEdges()
		c := g.Clone()
		for i := 0; i < 20; i++ {
			c.AddEdge(ids.NodeID(10+rng.Intn(10)), ids.NodeID(rng.Intn(20)))
		}
		return g.NumEdges() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a TDN advanced through an arbitrary schedule of arrivals and
// clock jumps always matches the naive rescan simulator.
func TestQuickTDNMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewTDN(0)
		naive := &testutil.NaiveTDN{}
		now := int64(0)
		for i := 0; i < 50; i++ {
			now += int64(1 + rng.Intn(3)) // jumps allowed
			if g.AdvanceTo(now) != nil {
				return false
			}
			naive.AdvanceTo(now)
			for j := 0; j < rng.Intn(4); j++ {
				u := ids.NodeID(rng.Intn(8))
				v := ids.NodeID(rng.Intn(8))
				if u == v {
					continue
				}
				e := stream.Edge{Src: u, Dst: v, T: now, Lifetime: 1 + rng.Intn(6)}
				if g.Add(e) != nil {
					return false
				}
				naive.Add(e)
			}
			want := naive.AlivePairs()
			total := 0
			for k, c := range want {
				u, v := ids.SplitEdgeKey(k)
				if g.Multiplicity(u, v) != c {
					return false
				}
				total += c
			}
			if g.NumAliveEdges() != total {
				return false
			}
			if g.NumNodes() != len(naive.AliveNodes()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: expiry-range iteration partitions the live edges — the union
// over disjoint ranges equals the full live set, with no duplicates.
func TestQuickTDNExpiryRangePartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewTDN(0)
		if g.AdvanceTo(1) != nil {
			return false
		}
		for i := 0; i < 30; i++ {
			u := ids.NodeID(rng.Intn(10))
			v := ids.NodeID(rng.Intn(10))
			if u == v {
				continue
			}
			if g.Add(stream.Edge{Src: u, Dst: v, T: 1, Lifetime: 1 + rng.Intn(20)}) != nil {
				return false
			}
		}
		mid := int64(1 + rng.Intn(22))
		count := 0
		g.ForEachEdgeExpiringIn(0, mid, func(stream.Edge) { count++ })
		g.ForEachEdgeExpiringIn(mid, 1<<40, func(stream.Edge) { count++ })
		return count == g.NumAliveEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
