package graph

import (
	"fmt"
	"sort"

	"tdnstream/internal/ids"
	"tdnstream/internal/stream"
)

// TDN is the general time-decaying dynamic interaction network of paper
// §II-B: a directed multigraph where every edge carries a lifetime that
// ticks down each step; edges are removed when it reaches zero, and nodes
// disappear when their last edge does.
//
// Edges are bucketed by expiry time (T + lifetime) so advancing the clock
// by one step expires exactly one bucket. Adjacency keeps multiplicity
// counts because (a) parallel interactions are allowed, and (b) the IC
// baselines derive edge probabilities from the live multiplicity.
type TDN struct {
	out     map[ids.NodeID]map[ids.NodeID]int
	in      map[ids.NodeID]map[ids.NodeID]int
	refs    map[ids.NodeID]int // live edge endpoints per node
	buckets map[int64][]stream.Edge
	now     int64
	alive   int // live edge instances (with multiplicity)
	nodeCap int
}

// NewTDN returns an empty TDN positioned at time now.
func NewTDN(now int64) *TDN {
	return &TDN{
		out:     make(map[ids.NodeID]map[ids.NodeID]int),
		in:      make(map[ids.NodeID]map[ids.NodeID]int),
		refs:    make(map[ids.NodeID]int),
		buckets: make(map[int64][]stream.Edge),
		now:     now,
	}
}

// Now returns the TDN's current time.
func (g *TDN) Now() int64 { return g.now }

// Add inserts an edge arriving at the current time step. The edge must
// carry a positive lifetime and must not be a self-loop or arrive in the
// past; violations are reported as errors because they indicate a stream
// wiring bug.
func (g *TDN) Add(e stream.Edge) error {
	if e.Src == e.Dst {
		return fmt.Errorf("graph: self-loop edge %d→%d", e.Src, e.Dst)
	}
	if e.Lifetime < 1 {
		return fmt.Errorf("graph: non-positive lifetime %d", e.Lifetime)
	}
	if e.T != g.now {
		return fmt.Errorf("graph: edge timestamped %d added at time %d", e.T, g.now)
	}
	g.buckets[e.Expiry()] = append(g.buckets[e.Expiry()], e)
	g.link(e.Src, e.Dst)
	return nil
}

func (g *TDN) link(u, v ids.NodeID) {
	m := g.out[u]
	if m == nil {
		m = make(map[ids.NodeID]int)
		g.out[u] = m
	}
	m[v]++
	m = g.in[v]
	if m == nil {
		m = make(map[ids.NodeID]int)
		g.in[v] = m
	}
	m[u]++
	g.refs[u]++
	g.refs[v]++
	g.alive++
	for _, n := range [2]ids.NodeID{u, v} {
		if int(n)+1 > g.nodeCap {
			g.nodeCap = int(n) + 1
		}
	}
}

func (g *TDN) unlink(u, v ids.NodeID) {
	if m := g.out[u]; m != nil {
		if m[v]--; m[v] == 0 {
			delete(m, v)
			if len(m) == 0 {
				delete(g.out, u)
			}
		}
	}
	if m := g.in[v]; m != nil {
		if m[u]--; m[u] == 0 {
			delete(m, u)
			if len(m) == 0 {
				delete(g.in, v)
			}
		}
	}
	for _, n := range [2]ids.NodeID{u, v} {
		if g.refs[n]--; g.refs[n] == 0 {
			delete(g.refs, n)
		}
	}
	g.alive--
}

// Restore inserts an edge that arrived in the past but is still alive at
// the current time — used when reconstructing a TDN from a snapshot.
func (g *TDN) Restore(e stream.Edge) error {
	if e.Src == e.Dst {
		return fmt.Errorf("graph: self-loop edge %d→%d", e.Src, e.Dst)
	}
	if e.T > g.now || e.Expiry() <= g.now {
		return fmt.Errorf("graph: edge [%d,%d) not alive at restore time %d", e.T, e.Expiry(), g.now)
	}
	g.buckets[e.Expiry()] = append(g.buckets[e.Expiry()], e)
	g.link(e.Src, e.Dst)
	return nil
}

// AdvanceTo moves the clock forward to t, expiring every edge whose
// remaining lifetime reaches zero on the way. Moving backwards is an error.
func (g *TDN) AdvanceTo(t int64) error {
	if t < g.now {
		return fmt.Errorf("graph: cannot rewind TDN from %d to %d", g.now, t)
	}
	for tt := g.now + 1; tt <= t; tt++ {
		if bucket, ok := g.buckets[tt]; ok {
			for _, e := range bucket {
				g.unlink(e.Src, e.Dst)
			}
			delete(g.buckets, tt)
		}
	}
	g.now = t
	return nil
}

// OutNeighbors visits the distinct live out-neighbors of u.
func (g *TDN) OutNeighbors(u ids.NodeID, visit func(v ids.NodeID)) {
	for v := range g.out[u] {
		visit(v)
	}
}

// InNeighbors visits the distinct live in-neighbors of u.
func (g *TDN) InNeighbors(u ids.NodeID, visit func(v ids.NodeID)) {
	for v := range g.in[u] {
		visit(v)
	}
}

// Multiplicity returns the number of live parallel edges u→v (the x in the
// IC probability p_uv = 2/(1+e^{-0.2x})-1).
func (g *TDN) Multiplicity(u, v ids.NodeID) int { return g.out[u][v] }

// NodeCap returns an exclusive upper bound on node ids ever seen.
func (g *TDN) NodeCap() int { return g.nodeCap }

// Alive reports whether node n currently has at least one live edge.
func (g *TDN) Alive(n ids.NodeID) bool { return g.refs[n] > 0 }

// OutDegree returns the number of distinct live out-neighbors of u.
func (g *TDN) OutDegree(u ids.NodeID) int { return len(g.out[u]) }

// InDegree returns the number of distinct live in-neighbors of u.
func (g *TDN) InDegree(u ids.NodeID) int { return len(g.in[u]) }

// NumNodes reports the number of currently live nodes.
func (g *TDN) NumNodes() int { return len(g.refs) }

// NumAliveEdges reports live edge instances including multiplicity.
func (g *TDN) NumAliveEdges() int { return g.alive }

// Nodes visits every live node.
func (g *TDN) Nodes(visit func(n ids.NodeID)) {
	for n := range g.refs {
		visit(n)
	}
}

// SortedNodes returns the live nodes in ascending id order (deterministic
// iteration for seeded baselines).
func (g *TDN) SortedNodes() []ids.NodeID {
	out := make([]ids.NodeID, 0, len(g.refs))
	for n := range g.refs {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForEachLiveEdge visits every live edge instance (with multiplicity).
func (g *TDN) ForEachLiveEdge(visit func(e stream.Edge)) {
	for exp, bucket := range g.buckets {
		if exp <= g.now {
			continue // defensive: should have been expired
		}
		for _, e := range bucket {
			visit(e)
		}
	}
}

// ForEachEdgeExpiringIn visits live edges with expiry in [lo, hi) — i.e.
// remaining lifetime in [lo-now, hi-now). HISTAPPROX uses this to feed a
// newly created instance the backlog {e ∈ E_t : l ≤ l_e < l*} (Alg. 3
// line 15).
func (g *TDN) ForEachEdgeExpiringIn(lo, hi int64, visit func(e stream.Edge)) {
	if hi-lo < int64(len(g.buckets)) {
		// Narrow range: walk the expiry slots directly.
		for exp := lo; exp < hi; exp++ {
			if exp <= g.now {
				continue
			}
			for _, e := range g.buckets[exp] {
				visit(e)
			}
		}
		return
	}
	// Wide range: walking the map once is cheaper. Sort bucket keys so
	// visit order is deterministic.
	keys := make([]int64, 0, len(g.buckets))
	for exp := range g.buckets {
		if exp > g.now && exp >= lo && exp < hi {
			keys = append(keys, exp)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, exp := range keys {
		for _, e := range g.buckets[exp] {
			visit(e)
		}
	}
}
