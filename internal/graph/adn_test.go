package graph

import (
	"testing"

	"tdnstream/internal/ids"
)

func TestADNAddEdgeDedup(t *testing.T) {
	g := NewADN()
	if !g.AddEdge(1, 2) {
		t.Fatal("first insert should be new")
	}
	if g.AddEdge(1, 2) {
		t.Fatal("duplicate pair should not be new")
	}
	if !g.AddEdge(2, 1) {
		t.Fatal("reverse direction is a distinct pair")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.NumInteractions() != 3 {
		t.Fatalf("NumInteractions = %d, want 3", g.NumInteractions())
	}
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", g.NumNodes())
	}
}

func TestADNIgnoresSelfLoop(t *testing.T) {
	g := NewADN()
	if g.AddEdge(5, 5) {
		t.Fatal("self-loop should be rejected")
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("self-loop must not touch the graph")
	}
}

func TestADNNeighbors(t *testing.T) {
	g := NewADN()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(4, 2)
	var outs []ids.NodeID
	g.OutNeighbors(1, func(v ids.NodeID) { outs = append(outs, v) })
	if len(outs) != 2 {
		t.Fatalf("out(1) = %v", outs)
	}
	var ins []ids.NodeID
	g.InNeighbors(2, func(v ids.NodeID) { ins = append(ins, v) })
	if len(ins) != 2 {
		t.Fatalf("in(2) = %v", ins)
	}
	if g.NodeCap() != 5 {
		t.Fatalf("NodeCap = %d, want 5", g.NodeCap())
	}
}

func TestADNHasEdgeAndPairs(t *testing.T) {
	g := NewADN()
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatal("HasEdge direction broken")
	}
	count := 0
	g.Pairs(func(u, v ids.NodeID) { count++ })
	if count != 2 {
		t.Fatalf("Pairs visited %d, want 2", count)
	}
}

func TestADNCloneIsDeep(t *testing.T) {
	g := NewADN()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	c := g.Clone()
	c.AddEdge(3, 4)
	if g.HasEdge(3, 4) {
		t.Fatal("mutating clone leaked into original")
	}
	if g.NumEdges() != 2 || c.NumEdges() != 3 {
		t.Fatalf("edges: orig %d clone %d", g.NumEdges(), c.NumEdges())
	}
	// appending to a cloned adjacency slice must not clobber the original
	c.AddEdge(1, 5)
	n := 0
	g.OutNeighbors(1, func(ids.NodeID) { n++ })
	if n != 1 {
		t.Fatalf("original out(1) grew to %d after clone mutation", n)
	}
}
