// Package graph provides the two dynamic-graph representations the
// reproduction is built on:
//
//   - ADN: an addition-only dynamic interaction network (paper Example 3).
//     Each SIEVEADN instance owns one; edges only accumulate, which is the
//     property (f_t(S) never decreases) that the sieve's approximation
//     proof relies on.
//   - TDN: the general time-decaying dynamic interaction network
//     (paper §II-B) with per-edge lifetimes and smooth expiry, used as the
//     global graph view by the baselines (Greedy, Random, RIS family) and
//     as the backlog store HISTAPPROX feeds new instances from.
//
// Both store directed multigraphs without self-loops; for reachability
// queries parallel edges collapse, so ADN dedups pairs while TDN keeps
// multiplicity counts (needed both for expiry and for the IC edge
// probabilities p_uv = 2/(1+e^{-0.2x})-1).
package graph

import (
	"tdnstream/internal/ids"
)

// ADN is an append-only directed graph. The zero value is not usable; call
// NewADN.
type ADN struct {
	out   map[ids.NodeID][]ids.NodeID
	in    map[ids.NodeID][]ids.NodeID
	pairs map[uint64]struct{}
	nodes map[ids.NodeID]struct{}
	// nodeCap is an exclusive upper bound on node ids seen, used by the
	// influence oracle to size its generation-stamped scratch slices.
	nodeCap int
	// interactions counts every fed edge including duplicates of the same
	// directed pair (multi-edges in the paper's model).
	interactions int
}

// NewADN returns an empty addition-only graph.
func NewADN() *ADN {
	return &ADN{
		out:   make(map[ids.NodeID][]ids.NodeID),
		in:    make(map[ids.NodeID][]ids.NodeID),
		pairs: make(map[uint64]struct{}),
		nodes: make(map[ids.NodeID]struct{}),
	}
}

// AddEdge inserts the directed edge u→v, reporting whether the pair was
// new (parallel edges are recorded in the interaction count only).
// Self-loops are ignored, matching the TDN model's no-self-influence rule.
func (g *ADN) AddEdge(u, v ids.NodeID) bool {
	if u == v {
		return false
	}
	g.interactions++
	g.touch(u)
	g.touch(v)
	key := ids.EdgeKey(u, v)
	if _, dup := g.pairs[key]; dup {
		return false
	}
	g.pairs[key] = struct{}{}
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	return true
}

func (g *ADN) touch(n ids.NodeID) {
	if _, ok := g.nodes[n]; !ok {
		g.nodes[n] = struct{}{}
	}
	if int(n)+1 > g.nodeCap {
		g.nodeCap = int(n) + 1
	}
}

// OutNeighbors visits the distinct out-neighbors of u.
func (g *ADN) OutNeighbors(u ids.NodeID, visit func(v ids.NodeID)) {
	for _, v := range g.out[u] {
		visit(v)
	}
}

// InNeighbors visits the distinct in-neighbors of u.
func (g *ADN) InNeighbors(u ids.NodeID, visit func(v ids.NodeID)) {
	for _, v := range g.in[u] {
		visit(v)
	}
}

// NodeCap returns an exclusive upper bound on node ids present.
func (g *ADN) NodeCap() int { return g.nodeCap }

// NumNodes reports the number of distinct nodes touched by any edge.
func (g *ADN) NumNodes() int { return len(g.nodes) }

// NumEdges reports the number of distinct directed pairs.
func (g *ADN) NumEdges() int { return len(g.pairs) }

// NumInteractions reports all fed edges including parallel duplicates.
func (g *ADN) NumInteractions() int { return g.interactions }

// HasEdge reports whether the directed pair u→v is present.
func (g *ADN) HasEdge(u, v ids.NodeID) bool {
	_, ok := g.pairs[ids.EdgeKey(u, v)]
	return ok
}

// Nodes visits every node present in the graph.
func (g *ADN) Nodes(visit func(n ids.NodeID)) {
	for n := range g.nodes {
		visit(n)
	}
}

// Pairs visits every distinct directed pair.
func (g *ADN) Pairs(visit func(u, v ids.NodeID)) {
	for k := range g.pairs {
		u, v := ids.SplitEdgeKey(k)
		visit(u, v)
	}
}

// Clone deep-copies the graph; HISTAPPROX uses this when a new instance is
// created from its successor (paper Fig. 6c).
func (g *ADN) Clone() *ADN {
	c := &ADN{
		out:          make(map[ids.NodeID][]ids.NodeID, len(g.out)),
		in:           make(map[ids.NodeID][]ids.NodeID, len(g.in)),
		pairs:        make(map[uint64]struct{}, len(g.pairs)),
		nodes:        make(map[ids.NodeID]struct{}, len(g.nodes)),
		nodeCap:      g.nodeCap,
		interactions: g.interactions,
	}
	for u, vs := range g.out {
		c.out[u] = append([]ids.NodeID(nil), vs...)
	}
	for v, us := range g.in {
		c.in[v] = append([]ids.NodeID(nil), us...)
	}
	for k := range g.pairs {
		c.pairs[k] = struct{}{}
	}
	for n := range g.nodes {
		c.nodes[n] = struct{}{}
	}
	return c
}
