// Package graph provides the two dynamic-graph representations the
// reproduction is built on:
//
//   - ADN: an addition-only dynamic interaction network (paper Example 3).
//     Each SIEVEADN instance owns one; edges only accumulate, which is the
//     property (f_t(S) never decreases) that the sieve's approximation
//     proof relies on. Adjacency is dense and paged — fixed-size blocks of
//     []NodeID neighbor lists indexed by NodeID (ids are dense via
//     ids.Dict) — and Clone is copy-on-write at page granularity, so
//     cloning costs O(nodes/pageSize) and divergence is paid lazily, one
//     small page copy per touched node block.
//   - TDN: the general time-decaying dynamic interaction network
//     (paper §II-B) with per-edge lifetimes and smooth expiry, used as the
//     global graph view by the baselines (Greedy, Random, RIS family) and
//     as the backlog store HISTAPPROX feeds new instances from.
//
// Both store directed multigraphs without self-loops; for reachability
// queries parallel edges collapse, so ADN dedups pairs while TDN keeps
// multiplicity counts (needed both for expiry and for the IC edge
// probabilities p_uv = 2/(1+e^{-0.2x})-1).
package graph

import (
	"math/bits"

	"tdnstream/internal/ids"
)

// dedupScanLimit is the out-degree above which AddEdge stops linear-
// scanning out[u] for duplicates and builds a per-node hash set instead.
// The build is O(deg) but happens at most once per node per ADN lifetime
// (clones drop the cache and rebuild lazily, which costs the same order
// as their first copy-on-write divergence on that node anyway).
const dedupScanLimit = 32

const (
	pageBits = 6 // 64 neighbor lists per page
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// adjPage is one fixed-size block of per-node neighbor lists.
type adjPage [pageSize][]ids.NodeID

// adjacency is a paged dense map NodeID → []NodeID with copy-on-write
// sharing. Pages referenced by more than one adjacency (after Clone) are
// immutable; writable() copies a page — capacity-clamping every neighbor
// slice header in the copy so later appends reallocate privately instead
// of colliding in a shared backing array — before the first mutation.
type adjacency struct {
	pages []*adjPage
	// owned[i] reports that pages[i] is referenced by this adjacency
	// alone and may be mutated in place.
	owned []bool
}

// slice returns n's neighbor list (nil if none).
func (a *adjacency) slice(n ids.NodeID) []ids.NodeID {
	pi := int(n) >> pageBits
	if pi >= len(a.pages) {
		return nil
	}
	p := a.pages[pi]
	if p == nil {
		return nil
	}
	return p[int(n)&pageMask]
}

// writable returns a pointer to n's slot inside a page this adjacency
// exclusively owns, growing the page table and copying a shared page as
// needed.
func (a *adjacency) writable(n ids.NodeID) *[]ids.NodeID {
	pi := int(n) >> pageBits
	if pi >= len(a.pages) {
		grown := make([]*adjPage, pi+pi/2+2)
		copy(grown, a.pages)
		a.pages = grown
		grownOwned := make([]bool, len(grown))
		copy(grownOwned, a.owned)
		a.owned = grownOwned
	}
	p := a.pages[pi]
	switch {
	case p == nil:
		p = new(adjPage)
		a.pages[pi] = p
		a.owned[pi] = true
	case !a.owned[pi]:
		cp := *p
		for i, s := range cp {
			cp[i] = s[:len(s):len(s)]
		}
		p = &cp
		a.pages[pi] = p
		a.owned[pi] = true
	}
	return &p[int(n)&pageMask]
}

// share returns a copy-on-write duplicate and demotes the receiver's
// pages to shared: after share, both sides copy a page before mutating
// it, so neither can publish writes into the other's view.
func (a *adjacency) share() adjacency {
	for i := range a.owned {
		a.owned[i] = false
	}
	return adjacency{
		pages: append([]*adjPage(nil), a.pages...),
		owned: make([]bool, len(a.pages)),
	}
}

// ADN is an append-only directed graph. The zero value is ready to use;
// NewADN exists for symmetry with NewTDN.
type ADN struct {
	out adjacency
	in  adjacency
	// present is a bitset of node ids touched by any edge.
	present  []uint64
	numNodes int
	numPairs int
	// dedup holds lazily built out-neighbor hash sets for high-degree
	// nodes. It is private to one ADN — never handed to a Clone — and
	// purely an accelerator: the out slices stay the source of truth.
	dedup map[ids.NodeID]map[ids.NodeID]struct{}
	// nodeCap is an exclusive upper bound on node ids seen, used by the
	// influence oracle to size its generation-stamped scratch slices.
	nodeCap int
	// interactions counts every fed edge including duplicates of the same
	// directed pair (multi-edges in the paper's model).
	interactions int
}

// NewADN returns an empty addition-only graph.
func NewADN() *ADN { return &ADN{} }

// AddEdge inserts the directed edge u→v, reporting whether the pair was
// new (parallel edges are recorded in the interaction count only).
// Self-loops are ignored, matching the TDN model's no-self-influence rule.
func (g *ADN) AddEdge(u, v ids.NodeID) bool {
	if u == v {
		return false
	}
	g.interactions++
	g.touch(u)
	g.touch(v)
	if g.hasOut(u, v) {
		return false
	}
	outU := g.out.writable(u)
	*outU = append(*outU, v)
	inV := g.in.writable(v)
	*inV = append(*inV, u)
	if d := g.dedup[u]; d != nil {
		d[v] = struct{}{}
	}
	g.numPairs++
	return true
}

// containsOut reports whether v is an out-neighbor of u without mutating
// the graph: the per-node hash set when one exists, a linear scan
// otherwise. Safe for concurrent readers.
func (g *ADN) containsOut(u, v ids.NodeID) bool {
	if d := g.dedup[u]; d != nil {
		_, dup := d[v]
		return dup
	}
	for _, w := range g.out.slice(u) {
		if w == v {
			return true
		}
	}
	return false
}

// hasOut is the AddEdge-path variant of containsOut: once u's out-degree
// crosses dedupScanLimit it builds the per-node hash set so subsequent
// insertions probe in O(1). Mutates g.dedup — writers only.
func (g *ADN) hasOut(u, v ids.NodeID) bool {
	if d := g.dedup[u]; d != nil {
		_, dup := d[v]
		return dup
	}
	ns := g.out.slice(u)
	if len(ns) <= dedupScanLimit {
		for _, w := range ns {
			if w == v {
				return true
			}
		}
		return false
	}
	d := make(map[ids.NodeID]struct{}, 2*len(ns))
	for _, w := range ns {
		d[w] = struct{}{}
	}
	if g.dedup == nil {
		g.dedup = make(map[ids.NodeID]map[ids.NodeID]struct{})
	}
	g.dedup[u] = d
	_, dup := d[v]
	return dup
}

// touch records node n in the presence bitset and the id bound.
func (g *ADN) touch(n ids.NodeID) {
	i := int(n)
	if i >= g.nodeCap {
		g.nodeCap = i + 1
	}
	w := i >> 6
	if w >= len(g.present) {
		grown := make([]uint64, w+w/2+1)
		copy(grown, g.present)
		g.present = grown
	}
	if mask := uint64(1) << (n & 63); g.present[w]&mask == 0 {
		g.present[w] |= mask
		g.numNodes++
	}
}

// OutNeighbors visits the distinct out-neighbors of u.
func (g *ADN) OutNeighbors(u ids.NodeID, visit func(v ids.NodeID)) {
	for _, v := range g.out.slice(u) {
		visit(v)
	}
}

// InNeighbors visits the distinct in-neighbors of u.
func (g *ADN) InNeighbors(u ids.NodeID, visit func(v ids.NodeID)) {
	for _, v := range g.in.slice(u) {
		visit(v)
	}
}

// OutSlice returns the distinct out-neighbors of u (influence.SliceGraph
// fast path). The slice is append-only; callers must not mutate it.
func (g *ADN) OutSlice(u ids.NodeID) []ids.NodeID { return g.out.slice(u) }

// InSlice returns the distinct in-neighbors of u (influence.SliceGraph
// fast path). The slice is append-only; callers must not mutate it.
func (g *ADN) InSlice(u ids.NodeID) []ids.NodeID { return g.in.slice(u) }

// NodeCap returns an exclusive upper bound on node ids present.
func (g *ADN) NodeCap() int { return g.nodeCap }

// NumNodes reports the number of distinct nodes touched by any edge.
func (g *ADN) NumNodes() int { return g.numNodes }

// NumEdges reports the number of distinct directed pairs.
func (g *ADN) NumEdges() int { return g.numPairs }

// NumInteractions reports all fed edges including parallel duplicates.
func (g *ADN) NumInteractions() int { return g.interactions }

// RestoreInteractions overrides the interaction count after a snapshot
// restore, which replays only distinct pairs and would otherwise lose the
// multi-edge total. It never lowers the count below what replay recorded.
func (g *ADN) RestoreInteractions(total int) {
	if total > g.interactions {
		g.interactions = total
	}
}

// HasEdge reports whether the directed pair u→v is present. It never
// mutates the graph, so concurrent readers are safe.
func (g *ADN) HasEdge(u, v ids.NodeID) bool {
	if u == v {
		return false
	}
	return g.containsOut(u, v)
}

// Nodes visits every node present in the graph, in ascending id order.
func (g *ADN) Nodes(visit func(n ids.NodeID)) {
	for w, word := range g.present {
		base := ids.NodeID(w) << 6
		for word != 0 {
			visit(base + ids.NodeID(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
}

// Pairs visits every distinct directed pair, grouped by source in
// ascending id order (insertion order within one source).
func (g *ADN) Pairs(visit func(u, v ids.NodeID)) {
	for pi, p := range g.out.pages {
		if p == nil {
			continue
		}
		base := ids.NodeID(pi) << pageBits
		for off, vs := range p {
			for _, v := range vs {
				visit(base+ids.NodeID(off), v)
			}
		}
	}
}

// Clone returns a copy-on-write copy of the graph in O(nodes/pageSize);
// HISTAPPROX uses this when a new instance is created from its successor
// (paper Fig. 6c, Alg. 3 lines 9-16). Original and clone share adjacency
// pages; whichever side first mutates a shared page copies it (see
// adjacency.writable), so divergence cost is proportional to the node
// blocks actually touched afterwards, never to total edges.
func (g *ADN) Clone() *ADN {
	return &ADN{
		out:          g.out.share(),
		in:           g.in.share(),
		present:      append([]uint64(nil), g.present...),
		numNodes:     g.numNodes,
		numPairs:     g.numPairs,
		nodeCap:      g.nodeCap,
		interactions: g.interactions,
	}
}
