// Serving: the tracker as an online service. This example starts the
// influtrackd serving layer in-process, streams a synthetic interaction
// dataset into it over HTTP (NDJSON, exactly like a remote producer
// would), queries the live top-k while ingestion runs, subscribes to
// the push feed (Server-Sent Events of typed top-k change events — the
// way a dashboard consumes the tracker without polling), then
// checkpoints the stream and restores it into a second server — the
// restart story of a production tracker — and finally hard-crashes the
// first server and rebuilds its exact state from the write-ahead log
// alone, the durability story behind influtrackd's -wal-dir.
//
// The stream is sharded (TrackerSpec.Shards = 4): the server partitions
// each batch by source node across four tracker instances and merges
// their candidates into the global top-k at query time, so one hot
// stream uses four cores instead of one. Everything else — ingest,
// top-k, checkpoint, restore — is identical to a single-tracker stream;
// the checkpoint carries all four partitions. See README.md for the
// full tour.
//
//	go run ./examples/serving
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"tdnstream"
	"tdnstream/internal/server"
)

const (
	k       = 5
	steps   = 3000
	maxLife = 500
)

// serve starts an HTTP listener for a server on a random localhost port.
func serve(s *server.Server) (base string, shutdown func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx) // stop accepting…
		s.Close()        // …then drain every ingest queue
	}
}

func main() {
	// The write-ahead log directory: with it set, every ingest chunk is
	// logged before its 200 OK, so the final act below can hard-crash
	// the server and recover the exact state from the log alone.
	walDir, err := os.MkdirTemp("", "tdnstream-serving-wal-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)

	spec := server.StreamSpec{
		Name:     "demo",
		Tracker:  tdnstream.TrackerSpec{Algo: "histapprox", K: k, Eps: 0.15, L: maxLife, Shards: 4},
		Lifetime: tdnstream.LifetimeSpec{Policy: "geometric", P: 0.005, L: maxLife, Seed: 7},
	}
	srv, err := server.New(server.Config{
		Streams: []server.StreamSpec{spec},
		WALDir:  walDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	base, shutdown := serve(srv)
	defer shutdown()

	// A producer: the built-in dataset rendered as NDJSON, POSTed in two
	// halves like a live feed.
	interactions, err := tdnstream.Dataset("gowalla", steps)
	if err != nil {
		log.Fatal(err)
	}
	post := func(part []tdnstream.Interaction) {
		var body bytes.Buffer
		if err := tdnstream.WriteNDJSON(&body, part, nil); err != nil {
			log.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/ingest?stream=demo", "application/x-ndjson", &body)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			log.Fatalf("ingest: %s: %s", resp.Status, msg)
		}
	}
	topk := func(base string) string {
		resp, err := http.Get(base + "/v1/topk?stream=demo")
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		return string(bytes.TrimSpace(out))
	}
	// Ingestion is asynchronous — POST returns once the records are
	// queued, not processed. A producer that wants read-your-writes polls
	// the stream info until the queue drains. Stale-dropped, failed and
	// superseded records count toward the drain: they were acknowledged
	// but skipped (replayed timestamps), rejected (poisoned batch) or
	// discarded by a checkpoint restore, so Processed alone would never
	// reach Ingested.
	quiesce := func() {
		type info struct {
			QueueDepth   int    `json:"queue_depth"`
			Ingested     uint64 `json:"ingested"`
			Processed    uint64 `json:"processed"`
			StaleDropped uint64 `json:"stale_dropped"`
			Failed       uint64 `json:"failed"`
			Superseded   uint64 `json:"superseded"`
		}
		for {
			resp, err := http.Get(base + "/v1/streams")
			if err != nil {
				log.Fatal(err)
			}
			var body struct {
				Streams []info `json:"streams"`
			}
			err = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err != nil {
				log.Fatal(err)
			}
			st := body.Streams[0]
			if st.QueueDepth == 0 && st.Processed+st.StaleDropped+st.Failed+st.Superseded >= st.Ingested {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	post(interactions[:steps/2])
	quiesce()
	fmt.Println("after first half: ", topk(base))

	// A dashboard does not poll: it subscribes to the push feed and
	// receives typed top-k change events (entered, left, rank_changed,
	// gain_changed, keyframe), resumable after a disconnect via the
	// SSE-standard Last-Event-ID header. ?since=0 replays the journal
	// from the start, so the subscription opens with a keyframe of the
	// current state. (examples/serving/dashboard.html is the browser
	// twin of this loop, built on EventSource.)
	subCtx, cancelSub := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(subCtx, "GET", base+"/v1/streams/demo/events?since=0", nil)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Body.Close()
	lines := make(chan string, 1024)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(sub.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				lines <- data
			}
		}
	}()

	post(interactions[steps/2:])
	quiesce()
	fmt.Println("after second half:", topk(base))

	// Drain what the second half pushed: count events by type and show
	// the first few membership changes.
	time.Sleep(200 * time.Millisecond) // let the final publish fan out
	cancelSub()
	counts := map[string]int{}
	var changes []string
	for data := range lines {
		var ev struct {
			Seq  int64  `json:"seq"`
			Type string `json:"type"`
			Node *struct {
				Label string `json:"label"`
			} `json:"node"`
		}
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			continue
		}
		counts[ev.Type]++
		if (ev.Type == "entered" || ev.Type == "left") && ev.Node != nil && len(changes) < 6 {
			changes = append(changes, fmt.Sprintf("%s %q (seq %d)", ev.Type, ev.Node.Label, ev.Seq))
		}
	}
	fmt.Printf("pushed while streaming: %d entered, %d left, %d keyframes, %d value drifts\n",
		counts["entered"], counts["left"], counts["keyframe"], counts["gain_changed"])
	for _, c := range changes {
		fmt.Println("  event:", c)
	}

	// Checkpoint the live stream and restore it into a brand-new server —
	// same top-k, no replay of the 3000-step history.
	ckpt, err := srv.Checkpoint(context.Background(), "demo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d bytes\n", len(ckpt))

	srv2, err := server.New(server.Config{})
	if err != nil {
		log.Fatal(err)
	}
	base2, shutdown2 := serve(srv2)
	defer shutdown2()
	if _, err := srv2.Restore(context.Background(), ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Println("restored server:  ", topk(base2))

	// The crash story: the first server goes down without writing any
	// checkpoint — every acknowledged chunk lives only in the
	// write-ahead log — and a recovery server booted over the same
	// directory replays the log through the same pipeline at startup,
	// answering identically. (In-process we must close the old server
	// so it releases the log's exclusive lock; a real kill -9 releases
	// it automatically, which is the case influtrackd's -wal-dir and
	// the CI smoke exercise. -wal-fsync picks how much a machine crash,
	// rather than a process kill, can take.)
	shutdown()
	recov, err := server.New(server.Config{WALDir: walDir})
	if err != nil {
		log.Fatal(err)
	}
	if err := recov.AddStream(spec); err != nil { // replays the stream's WAL
		log.Fatal(err)
	}
	base3, shutdown3 := serve(recov)
	defer shutdown3()
	fmt.Println("after crash replay:", topk(base3))
}
