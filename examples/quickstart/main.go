// Quickstart: track the 10 most influential nodes of a drifting
// interaction stream with HISTAPPROX and geometric time decay.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tdnstream"
)

func main() {
	// A built-in synthetic stream: one interaction per time step.
	interactions, err := tdnstream.Dataset("brightkite", 3000)
	if err != nil {
		log.Fatal(err)
	}

	// HISTAPPROX with budget k=10, granularity ε=0.1, max lifetime 10000.
	tracker := tdnstream.NewHistApprox(10, 0.1, 10_000)

	// Geometric decay: every live interaction is forgotten with
	// probability p=0.002 per step (expected lifetime 500 steps).
	pipe := tdnstream.NewPipeline(tracker, tdnstream.GeometricLifetime(0.002, 10_000, 42))

	err = pipe.Run(interactions, func(t int64) error {
		if t%500 == 0 {
			sol := pipe.Solution()
			fmt.Printf("t=%-5d spread=%-4d oracle-calls=%-8d seeds=%v\n",
				t, sol.Value, pipe.OracleCalls(), sol.Seeds)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	sol := pipe.Solution()
	fmt.Printf("\nfinal influential nodes (k=10): %v\n", sol.Seeds)
	fmt.Printf("their influence spread f_t(S):  %d nodes\n", sol.Value)
}
