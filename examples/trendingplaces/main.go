// Trending places: the paper's LBSN scenario (§V-A). Check-ins form
// interactions ⟨place, user, t⟩ — a place influences the users it
// attracts — and the tracker maintains the k currently most popular
// places as popularity drifts.
//
// The example shows how the influential set rotates over time (the
// generator boosts a fresh set of "trending" places every 400 steps) and
// compares the streaming tracker's quality against re-running greedy.
//
//	go run ./examples/trendingplaces
package main

import (
	"fmt"
	"log"

	"tdnstream"
)

const (
	k     = 5
	steps = 4000
	decay = 0.004 // expected lifetime 250 steps
	maxL  = 5000
)

func overlap(a, b []tdnstream.NodeID) int {
	set := make(map[tdnstream.NodeID]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	n := 0
	for _, x := range b {
		if set[x] {
			n++
		}
	}
	return n
}

func main() {
	checkins, err := tdnstream.Dataset("brightkite", steps)
	if err != nil {
		log.Fatal(err)
	}

	hist := tdnstream.NewPipeline(
		tdnstream.NewHistApprox(k, 0.1, maxL),
		tdnstream.GeometricLifetime(decay, maxL, 7),
	)
	greedy := tdnstream.NewPipeline(
		tdnstream.NewGreedy(k),
		tdnstream.GeometricLifetime(decay, maxL, 7), // same seed → same lifetimes
	)

	var prev []tdnstream.NodeID
	var histValueSum float64
	fmt.Println("tracking the top-5 most popular places (ids < 400 are places):")
	err = hist.Run(checkins, func(t int64) error {
		sol := hist.Solution() // queried every step, like the paper
		histValueSum += float64(sol.Value)
		if t%400 != 0 {
			return nil
		}
		rotated := ""
		if prev != nil {
			kept := overlap(prev, sol.Seeds)
			rotated = fmt.Sprintf("(kept %d/%d from previous epoch)", kept, k)
		}
		fmt.Printf("t=%-5d popularity=%-4d places=%v %s\n", t, sol.Value, sol.Seeds, rotated)
		prev = sol.Seeds
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// The tracker answers *every* step for its processing cost; re-running
	// greedy pays per query. Query greedy every step too, to compare like
	// for like.
	var greedyValueSum float64
	if err := greedy.Run(checkins, func(t int64) error {
		greedyValueSum += float64(greedy.Solution().Value)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquerying the top-5 at every one of the %d steps:\n", steps)
	fmt.Printf("  HistApprox: avg popularity %.1f using %d oracle calls\n",
		histValueSum/steps, hist.OracleCalls())
	fmt.Printf("  Greedy:     avg popularity %.1f using %d oracle calls\n",
		greedyValueSum/steps, greedy.OracleCalls())
	fmt.Printf("  quality ratio %.2f at %.1fx fewer oracle calls\n",
		histValueSum/greedyValueSum,
		float64(greedy.OracleCalls())/float64(hist.OracleCalls()))
}
