// Checkpointing: a tracking service that survives restarts. The tracker
// is checkpointed mid-stream with SaveTracker, "crashes", is restored
// with LoadTracker, and continues on the rest of the stream — producing
// exactly the answers the uninterrupted tracker would have.
//
//	go run ./examples/checkpointing
package main

import (
	"bytes"
	"fmt"
	"log"

	"tdnstream"
)

const (
	k        = 5
	steps    = 2000
	crashAt  = 1000
	maxLife  = 500
	forgetP  = 0.005
	lifeSeed = 77
)

func main() {
	interactions, err := tdnstream.Dataset("stackoverflow-c2a", steps)
	if err != nil {
		log.Fatal(err)
	}
	firstHalf, secondHalf := interactions[:crashAt], interactions[crashAt:]

	// Reference service: runs uninterrupted.
	reference := tdnstream.NewPipeline(
		tdnstream.NewHistApprox(k, 0.15, maxLife),
		tdnstream.GeometricLifetime(forgetP, maxLife, lifeSeed),
	)

	// Production service: processes half the stream, checkpoints, "crashes".
	service := tdnstream.NewHistApprox(k, 0.15, maxLife)
	assignerA := tdnstream.GeometricLifetime(forgetP, maxLife, lifeSeed)
	pipe := tdnstream.NewPipeline(service, assignerA)
	if err := pipe.Run(firstHalf, nil); err != nil {
		log.Fatal(err)
	}

	var checkpoint bytes.Buffer
	if err := tdnstream.SaveTracker(&checkpoint, service); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed at t=%d: %d bytes (graph + sieve candidates; reach sets are rebuilt on load)\n",
		crashAt, checkpoint.Len())

	// ... process crashes; a new one starts from the checkpoint ...
	restored, err := tdnstream.LoadTracker(&checkpoint)
	if err != nil {
		log.Fatal(err)
	}
	// Lifetime assignment must resume from the same stream position:
	// replay the assigner deterministically over the consumed prefix.
	assignerB := tdnstream.GeometricLifetime(forgetP, maxLife, lifeSeed)
	for _, x := range firstHalf {
		assignerB.Assign(x)
	}
	resumed := tdnstream.NewPipeline(restored, assignerB)

	// Drive both over the second half and compare.
	if err := reference.Run(firstHalf, nil); err != nil {
		log.Fatal(err)
	}
	diverged := false
	refRun := func() error {
		for i := range secondHalf {
			b := secondHalf[i : i+1]
			if err := reference.ObserveBatch(b[0].T, b); err != nil {
				return err
			}
			if err := resumed.ObserveBatch(b[0].T, b); err != nil {
				return err
			}
			if b[0].T%250 == 0 {
				rv, sv := reference.Solution(), resumed.Solution()
				same := rv.Value == sv.Value
				if !same {
					diverged = true
				}
				fmt.Printf("t=%-5d reference=%-4d resumed=%-4d identical=%v\n", b[0].T, rv.Value, sv.Value, same)
			}
		}
		return nil
	}
	if err := refRun(); err != nil {
		log.Fatal(err)
	}
	if diverged {
		fmt.Println("\nFAIL: restored tracker diverged from the uninterrupted run")
	} else {
		fmt.Println("\nthe restored tracker is indistinguishable from one that never crashed.")
	}
}
