// Viral burst: a Twitter-Higgs-style event. The synthetic stream has a
// global retweet burst around t=1600 concentrated on a few "discovery"
// authors; time decay lets the tracker surface the burst influencers
// during the event and forget them afterwards.
//
//	go run ./examples/viralburst
package main

import (
	"fmt"
	"log"
	"sort"

	"tdnstream"
)

const (
	k     = 5
	steps = 4000
	decay = 0.01 // fast decay: expected lifetime 100 steps
	maxL  = 2000
)

func main() {
	stream, err := tdnstream.Dataset("twitter-higgs", steps)
	if err != nil {
		log.Fatal(err)
	}

	pipe := tdnstream.NewPipeline(
		tdnstream.NewHistApprox(k, 0.15, maxL),
		tdnstream.GeometricLifetime(decay, maxL, 11),
	)

	// Count how often each user appears in the tracked top-k during three
	// phases: before, during, and after the burst window (the generator
	// puts the burst at steps*2/5 … steps*2/5+steps/8).
	burstStart, burstEnd := int64(steps*2/5), int64(steps*2/5+steps/8)
	phase := func(t int64) string {
		switch {
		case t < burstStart:
			return "before"
		case t < burstEnd:
			return "during"
		default:
			return "after"
		}
	}
	appearances := map[string]map[tdnstream.NodeID]int{
		"before": {}, "during": {}, "after": {},
	}

	err = pipe.Run(stream, func(t int64) error {
		if t%10 != 0 {
			return nil
		}
		for _, s := range pipe.Solution().Seeds {
			appearances[phase(t)][s]++
		}
		if t == burstStart || t == burstEnd {
			sol := pipe.Solution()
			fmt.Printf("t=%-5d (%s burst boundary) spread=%-4d seeds=%v\n",
				t, phase(t), sol.Value, sol.Seeds)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nmost frequent top-k members per phase:")
	for _, ph := range []string{"before", "during", "after"} {
		type uc struct {
			u tdnstream.NodeID
			c int
		}
		var ranked []uc
		for u, c := range appearances[ph] {
			ranked = append(ranked, uc{u, c})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].c != ranked[j].c {
				return ranked[i].c > ranked[j].c
			}
			return ranked[i].u < ranked[j].u
		})
		if len(ranked) > 5 {
			ranked = ranked[:5]
		}
		fmt.Printf("  %-7s", ph)
		for _, r := range ranked {
			fmt.Printf("  u%d(×%d)", r.u, r.c)
		}
		fmt.Println()
	}
	fmt.Println("\nburst-specific authors enter the top-k only during the event;")
	fmt.Println("time decay discards them once the burst's interactions expire,")
	fmt.Println("while the long-run influencers persist across all three phases.")
}
