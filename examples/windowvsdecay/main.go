// Window vs decay: the paper's Example 1. Alice has been influential for
// a long time, then falls ill and goes silent for a while. A sliding
// window forgets her the moment her last interaction leaves the window —
// an abrupt, unstable judgement — while geometric decay lets her
// accumulated influence fade smoothly, keeping her ranked during a
// temporary absence.
//
//	go run ./examples/windowvsdecay
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tdnstream"
)

const (
	alice       = tdnstream.NodeID(0)
	firstFan    = 100
	others      = 10 // background users 1..10
	activeUntil = 900
	silentUntil = 1500
	steps       = 1800
	k           = 3
)

// buildStream: Alice is retweeted every 3rd step until t=900, silent in
// (900, 1500], then returns. Background users are retweeted steadily but
// by fewer fans each.
func buildStream(rng *rand.Rand) []tdnstream.Interaction {
	var out []tdnstream.Interaction
	fan := firstFan
	for t := int64(1); t <= steps; t++ {
		aliceActive := t <= activeUntil || t > silentUntil
		if aliceActive && t%3 == 0 {
			out = append(out, tdnstream.Interaction{Src: alice, Dst: tdnstream.NodeID(fan), T: t})
			fan++
		} else {
			src := tdnstream.NodeID(1 + rng.Intn(others))
			dst := tdnstream.NodeID(1000 + rng.Intn(40)) // small shared fan pool
			out = append(out, tdnstream.Interaction{Src: src, Dst: dst, T: t})
		}
	}
	return out
}

func contains(seeds []tdnstream.NodeID, u tdnstream.NodeID) bool {
	for _, s := range seeds {
		if s == u {
			return true
		}
	}
	return false
}

func main() {
	const window = 180
	// Geometric decay with the same expected lifetime as the window.
	mkTrackers := func() (win, geo *tdnstream.Pipeline) {
		win = tdnstream.NewPipeline(
			tdnstream.NewHistApprox(k, 0.1, window),
			tdnstream.ConstantLifetime(window),
		)
		geo = tdnstream.NewPipeline(
			tdnstream.NewHistApprox(k, 0.1, 10*window),
			tdnstream.GeometricLifetime(1.0/window, 10*window, 5),
		)
		return
	}
	win, geo := mkTrackers()
	in := buildStream(rand.New(rand.NewSource(1)))

	type status struct{ winHas, geoHas bool }
	timeline := map[int64]status{}
	checkpoints := []int64{600, 900, 1000, 1100, 1200, 1300, 1400, 1500, 1650, 1800}

	if err := win.Run(in, func(t int64) error {
		for _, c := range checkpoints {
			if t == c {
				st := timeline[t]
				st.winHas = contains(win.Solution().Seeds, alice)
				timeline[t] = st
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := geo.Run(in, func(t int64) error {
		for _, c := range checkpoints {
			if t == c {
				st := timeline[t]
				st.geoHas = contains(geo.Solution().Seeds, alice)
				timeline[t] = st
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Alice is active until t=%d, silent until t=%d, then returns.\n", activeUntil, silentUntil)
	fmt.Printf("sliding window width and expected geometric lifetime are both %d steps.\n\n", window)
	fmt.Println("is Alice among the tracked top-3?")
	fmt.Println("t        sliding-window   geometric-decay")
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	for _, c := range checkpoints {
		st := timeline[c]
		note := ""
		if c == activeUntil {
			note = "   <- Alice falls ill"
		}
		if c == silentUntil {
			note = "   <- Alice returns"
		}
		fmt.Printf("%-8d %-16s %s%s\n", c, mark(st.winHas), mark(st.geoHas), note)
	}
	fmt.Println("\nthe window drops Alice shortly after her last interaction exits;")
	fmt.Println("geometric decay keeps a fading fraction of her influence alive,")
	fmt.Println("so a temporary absence does not erase a long history.")
}
