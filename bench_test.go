// Benchmarks regenerating every table and figure of the paper's
// evaluation (one per exhibit, quick-scale configurations; run
// cmd/benchfig -scale default for paper-scale numbers), plus ablation
// and micro benchmarks. Custom metrics attach the experiment's headline
// numbers to the benchmark output so `go test -bench=.` doubles as a
// shape check.
package tdnstream_test

import (
	"math/rand"
	"testing"

	"tdnstream/internal/baselines"
	"tdnstream/internal/bench"
	"tdnstream/internal/core"
	"tdnstream/internal/datasets"
	"tdnstream/internal/graph"
	"tdnstream/internal/ic"
	"tdnstream/internal/ids"
	"tdnstream/internal/influence"
	"tdnstream/internal/lifetime"
	"tdnstream/internal/ris"
	"tdnstream/internal/stream"
)

// BenchmarkTable1Datasets regenerates Table I (dataset summaries).
func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable1(bench.Table1Config{Steps: 2000}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7BasicVsHist regenerates Fig. 7 (BasicReduction vs
// HistApprox across lifetime skews p).
func BenchmarkFig7BasicVsHist(b *testing.B) {
	var lastValueRatio, lastCallRatio float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig7(bench.QuickFig7(), nil)
		if err != nil {
			b.Fatal(err)
		}
		lastValueRatio = rows[0].ValueRatioHistToBase
		lastCallRatio = rows[0].CallRatioHistToBase
	}
	b.ReportMetric(lastValueRatio, "value-ratio")
	b.ReportMetric(lastCallRatio, "call-ratio")
}

// BenchmarkFig8SolutionOverTime regenerates Fig. 8 (value over time:
// HistApprox vs greedy vs random).
func BenchmarkFig8SolutionOverTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig8Data(bench.QuickFig8()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9QualityRatio regenerates Fig. 9 (time-averaged value
// ratio vs greedy).
func BenchmarkFig9QualityRatio(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		cfg := bench.QuickFig8()
		data, err := bench.RunFig8Data(cfg)
		if err != nil {
			b.Fatal(err)
		}
		worst = 1
		for _, r := range bench.Fig9From(cfg, data, nil) {
			if r.Ratio < worst {
				worst = r.Ratio
			}
		}
	}
	b.ReportMetric(worst, "worst-ratio")
}

// BenchmarkFig10OracleRatio regenerates Fig. 10 (cumulative oracle-call
// ratio vs greedy).
func BenchmarkFig10OracleRatio(b *testing.B) {
	var final float64
	for i := 0; i < b.N; i++ {
		cfg := bench.QuickFig8()
		data, err := bench.RunFig8Data(cfg)
		if err != nil {
			b.Fatal(err)
		}
		d := data[0]
		hist := d.Runs[d.EpsKeys[len(d.EpsKeys)-1]].Calls
		greedy := d.Runs["greedy"].Calls
		final = hist.At(hist.Len()-1) / greedy.At(greedy.Len()-1)
	}
	b.ReportMetric(final, "call-ratio")
}

// BenchmarkFig11VaryK regenerates Fig. 11 (ratios vs budget k).
func BenchmarkFig11VaryK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig11(bench.QuickFig11(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12VaryL regenerates Fig. 12 (ratios vs lifetime bound L).
func BenchmarkFig12VaryL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig12(bench.QuickFig12(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13QualityVsRIS regenerates Fig. 13 (quality vs the RIS
// family and greedy).
func BenchmarkFig13QualityVsRIS(b *testing.B) {
	var hist float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig13(bench.QuickFig1314(), nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == "HistApprox" {
				hist = r.ValueRatio
			}
		}
	}
	b.ReportMetric(hist, "hist-ratio")
}

// BenchmarkFig14Throughput regenerates Fig. 14 (stream throughput per
// method).
func BenchmarkFig14Throughput(b *testing.B) {
	var histTP, immTP float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig14(bench.QuickFig1314(), nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Method {
			case "HistApprox":
				histTP = r.Throughput
			case "IMM":
				immTP = r.Throughput
			}
		}
	}
	b.ReportMetric(histTP, "hist-edges/s")
	b.ReportMetric(immTP, "imm-edges/s")
}

// BenchmarkAblationRefineHead compares HistApprox with and without the
// exact-head refinement (paper remark after Theorem 8): the refinement
// buys value at extra query-time oracle calls.
func BenchmarkAblationRefineHead(b *testing.B) {
	in, err := datasets.Generate("brightkite", 600)
	if err != nil {
		b.Fatal(err)
	}
	var plainVal, refinedVal float64
	for i := 0; i < b.N; i++ {
		plain, err := bench.RunTracker(core.NewHistApprox(5, 0.2, 500, nil), in,
			lifetime.NewGeometric(0.005, 500, 7), 1)
		if err != nil {
			b.Fatal(err)
		}
		refined := core.NewHistApprox(5, 0.2, 500, nil)
		refined.RefineHead = true
		ref, err := bench.RunTracker(refined, in, lifetime.NewGeometric(0.005, 500, 7), 1)
		if err != nil {
			b.Fatal(err)
		}
		plainVal = plain.Values.Mean()
		refinedVal = ref.Values.Mean()
	}
	b.ReportMetric(plainVal, "plain-value")
	b.ReportMetric(refinedVal, "refined-value")
}

// BenchmarkAblationLifetimeFamilies compares HistApprox cost across the
// lifetime families the TDN model supports (paper §II-B examples).
func BenchmarkAblationLifetimeFamilies(b *testing.B) {
	in, err := datasets.Generate("brightkite", 500)
	if err != nil {
		b.Fatal(err)
	}
	families := map[string]func() lifetime.Assigner{
		"window":    func() lifetime.Assigner { return lifetime.NewConstant(200) },
		"geometric": func() lifetime.Assigner { return lifetime.NewGeometric(0.005, 1000, 7) },
		"uniform":   func() lifetime.Assigner { return lifetime.NewUniform(1, 400, 7) },
		"zipf":      func() lifetime.Assigner { return lifetime.NewZipf(1.2, 1000, 7) },
	}
	for name, mk := range families {
		b.Run(name, func(b *testing.B) {
			var calls float64
			for i := 0; i < b.N; i++ {
				res, err := bench.RunTracker(core.NewHistApprox(5, 0.2, 1000, nil), in, mk(), 1)
				if err != nil {
					b.Fatal(err)
				}
				calls = res.Calls.At(res.Calls.Len() - 1)
			}
			b.ReportMetric(calls, "oracle-calls")
		})
	}
}

// --- micro benchmarks -------------------------------------------------

func benchGraph(n, e int, seed int64) *graph.ADN {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewADN()
	for i := 0; i < e; i++ {
		u := ids.NodeID(rng.Intn(n))
		v := ids.NodeID(rng.Intn(n))
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// BenchmarkOracleSpread measures one f_t evaluation (full BFS).
func BenchmarkOracleSpread(b *testing.B) {
	g := benchGraph(5000, 20000, 1)
	o := influence.New(g, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Spread(ids.NodeID(i % 5000))
	}
}

// BenchmarkOracleMarginalGain measures the incremental marginal-gain BFS
// against a materialized reach set.
func BenchmarkOracleMarginalGain(b *testing.B) {
	g := benchGraph(5000, 20000, 2)
	o := influence.New(g, nil)
	rs := influence.NewReachSet()
	o.FillReachSet(rs, 1, 2, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.MarginalGain(rs, ids.NodeID(i%5000), false)
	}
}

// BenchmarkSieveFeed measures one SIEVEADN batch at steady state. The
// sieve's graph grows with every fed edge, so the instance is recreated
// every 2000 iterations to keep the per-op cost representative of a
// live window (~2000 edges) rather than growing without bound with b.N.
func BenchmarkSieveFeed(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var s *core.Sieve
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2000 == 0 {
			s = core.NewSieve(10, 0.1, nil)
		}
		u := ids.NodeID(rng.Intn(3000))
		v := ids.NodeID(rng.Intn(3000))
		if u == v {
			continue
		}
		s.Feed([]core.Pair{{Src: u, Dst: v}})
	}
}

// BenchmarkHistApproxStep measures one HISTAPPROX stream step including
// lifetime grouping and redundancy reduction. Geometric decay keeps the
// live graph bounded (~500 edges at p=0.002), so no reset is needed, but
// the tracker is still recreated every 5000 steps to bound drift.
func BenchmarkHistApproxStep(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	assign := lifetime.NewGeometric(0.002, 2000, 4)
	var h *core.HistApprox
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%5000 == 0 {
			h = core.NewHistApprox(10, 0.1, 2000, nil)
		}
		t := int64(i%5000 + 1)
		u := ids.NodeID(rng.Intn(3000))
		v := ids.NodeID(rng.Intn(3000))
		if u == v {
			v = (v + 1) % 3000
		}
		x := stream.Interaction{Src: u, Dst: v, T: t}
		if err := h.Step(t, []stream.Edge{{Src: u, Dst: v, T: t, Lifetime: assign.Assign(x)}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyQuery measures one full lazy-greedy query on a live TDN.
func BenchmarkGreedyQuery(b *testing.B) {
	in, err := datasets.Generate("brightkite", 1500)
	if err != nil {
		b.Fatal(err)
	}
	g := baselines.NewGreedy(10, nil)
	assign := lifetime.NewGeometric(0.002, 5000, 5)
	for _, batch := range stream.Batches(in) {
		var edges []stream.Edge
		for _, x := range batch.Interactions {
			edges = append(edges, stream.Edge{Src: x.Src, Dst: x.Dst, T: x.T, Lifetime: assign.Assign(x)})
		}
		if err := g.Step(batch.T, edges); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Solution()
	}
}

// BenchmarkDIMStep measures DIM's incremental sketch maintenance.
// Lifetimes are bounded (≤200), so the live graph is bounded; the
// tracker is recreated every 5000 steps to keep timestamps small.
func BenchmarkDIMStep(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	var d *ris.DIM
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%5000 == 0 {
			d = ris.NewDIM(10, 4, 6, nil)
		}
		t := int64(i%5000 + 1)
		u := ids.NodeID(rng.Intn(500))
		v := ids.NodeID(rng.Intn(500))
		if u == v {
			v = (v + 1) % 500
		}
		if err := d.Step(t, []stream.Edge{{Src: u, Dst: v, T: t, Lifetime: 1 + rng.Intn(200)}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRRSetSample measures one reverse-reachable set draw.
func BenchmarkRRSetSample(b *testing.B) {
	g := graph.NewTDN(0)
	if err := g.AdvanceTo(1); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		u := ids.NodeID(rng.Intn(3000))
		v := ids.NodeID(rng.Intn(3000))
		if u == v {
			continue
		}
		if err := g.Add(stream.Edge{Src: u, Dst: v, T: 1, Lifetime: 10}); err != nil {
			b.Fatal(err)
		}
	}
	w := ic.Snapshot(g)
	s := ris.NewSampler(w, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample()
	}
}
