package tdnstream

import (
	"fmt"
	"io"
	"strings"

	"tdnstream/internal/baselines"
	"tdnstream/internal/core"
	"tdnstream/internal/metrics"
	"tdnstream/internal/ris"
	"tdnstream/internal/shard"
	"tdnstream/internal/stream"
)

// TrackerSpec selects and parameterizes a tracker algorithm by name. It is
// the shared construction path of cmd/influtrack, cmd/influtrackd and the
// serving layer, so every front end accepts the same algorithm vocabulary.
type TrackerSpec struct {
	// Algo is one of: sieveadn, basicreduction, histapprox,
	// histapprox-refined, greedy, random, dim, imm, timplus.
	Algo string
	// K is the seed budget (required, ≥ 1).
	K int
	// Eps is the approximation granularity ε for the sieve family (and the
	// RIS baselines' eps); 0 means the paper default 0.1 (0.3 for imm/timplus).
	Eps float64
	// L is the maximum lifetime for basicreduction/histapprox (required
	// there, ignored elsewhere).
	L int
	// Beta is the DIM sketch fanout; 0 means the paper default 32.
	Beta int
	// Seed feeds the randomized algorithms (random, dim, imm, timplus).
	Seed int64
	// Workers ≥ 2 enables the parallel candidate loop on sieve-based
	// algorithms (ignored by the others).
	Workers int
	// Shards ≥ 2 partitions the stream by source-node hash across that
	// many independent tracker instances with a global greedy top-k merge
	// (internal/shard) — the scale-out mode for streams that saturate one
	// tracker. 0 or 1 runs a single tracker.
	Shards int
}

// TrackerAlgos lists the algorithm names TrackerSpec accepts.
func TrackerAlgos() []string {
	return []string{"sieveadn", "basicreduction", "histapprox", "histapprox-refined",
		"greedy", "random", "dim", "imm", "timplus"}
}

// New builds the tracker the spec describes. With Shards ≥ 2 the result
// is a shard.Engine: Shards independent copies of the described tracker
// behind a source-hash partitioner and a global top-k merge, all sharing
// one oracle-call counter. Randomized algorithms offset their seed by
// the shard index so partitions decorrelate deterministically.
func (s TrackerSpec) New() (Tracker, error) {
	if s.K < 1 {
		return nil, fmt.Errorf("tdnstream: tracker spec needs k ≥ 1 (got %d)", s.K)
	}
	if s.Shards >= 2 {
		calls := &metrics.Counter{}
		eng, err := shard.NewEngine(s.Shards, s.K, func(i int) (core.Tracker, error) {
			sub := s
			sub.Shards = 0
			sub.Seed = s.Seed + int64(i)
			return sub.build(calls)
		}, calls)
		if err != nil {
			return nil, fmt.Errorf("tdnstream: %w", err)
		}
		// Workers composes with sharding: every partition runs its own
		// parallel candidate loop on top of the shard-level concurrency —
		// only worth it when Shards ≪ cores.
		if s.Workers >= 2 {
			eng.SetParallel(s.Workers)
		}
		return eng, nil
	}
	tr, err := s.build(nil)
	if err != nil {
		return nil, err
	}
	if s.Workers >= 2 {
		tr = WithParallelSieve(tr, s.Workers)
	}
	return tr, nil
}

// build constructs the single-tracker form of the spec, counting oracle
// calls into calls (nil for a private counter). The parallel-sieve and
// sharding wrappers are applied by New.
func (s TrackerSpec) build(calls *metrics.Counter) (Tracker, error) {
	eps := s.Eps
	if eps == 0 {
		eps = 0.1
	}
	risEps := s.Eps
	if risEps == 0 {
		risEps = 0.3
	}
	beta := s.Beta
	if beta == 0 {
		beta = 32
	}
	needL := func() error {
		if s.L < 1 {
			return fmt.Errorf("tdnstream: algorithm %q needs a maximum lifetime L ≥ 1 (got %d)", s.Algo, s.L)
		}
		return nil
	}
	switch strings.ToLower(s.Algo) {
	case "sieveadn":
		return core.NewSieveADN(s.K, eps, calls), nil
	case "basicreduction":
		if err := needL(); err != nil {
			return nil, err
		}
		return core.NewBasicReduction(s.K, eps, s.L, calls), nil
	case "histapprox":
		if err := needL(); err != nil {
			return nil, err
		}
		return core.NewHistApprox(s.K, eps, s.L, calls), nil
	case "histapprox-refined":
		if err := needL(); err != nil {
			return nil, err
		}
		h := core.NewHistApprox(s.K, eps, s.L, calls)
		h.RefineHead = true
		return h, nil
	case "greedy":
		return baselines.NewGreedy(s.K, calls), nil
	case "random":
		return baselines.NewRandom(s.K, s.Seed, calls), nil
	case "dim":
		return ris.NewDIM(s.K, beta, s.Seed, calls), nil
	case "imm":
		return ris.NewIMM(s.K, ris.IMMOptions{Eps: risEps}, s.Seed, calls), nil
	case "timplus":
		return ris.NewTIMPlus(s.K, ris.TIMOptions{Eps: risEps}, s.Seed, calls), nil
	default:
		return nil, fmt.Errorf("tdnstream: unknown algorithm %q (want one of %s)",
			s.Algo, strings.Join(TrackerAlgos(), ", "))
	}
}

// LifetimeSpec selects and parameterizes a lifetime assigner (the TDN
// decay policy) by name, mirroring TrackerSpec.
type LifetimeSpec struct {
	// Policy is one of: constant, geometric, uniform, zipf.
	Policy string
	// Window is the constant policy's lifetime (sliding window width).
	Window int
	// P is the geometric policy's per-step forgetting probability.
	P float64
	// L is the maximum lifetime (geometric truncation / zipf support).
	L int
	// Lo and Hi bound the uniform policy.
	Lo, Hi int
	// S is the zipf exponent.
	S float64
	// Seed feeds the randomized policies.
	Seed int64
}

// LifetimePolicies lists the policy names LifetimeSpec accepts.
func LifetimePolicies() []string {
	return []string{"constant", "geometric", "uniform", "zipf"}
}

// New builds the assigner the spec describes.
func (s LifetimeSpec) New() (Assigner, error) {
	switch strings.ToLower(s.Policy) {
	case "constant", "window":
		if s.Window < 1 {
			return nil, fmt.Errorf("tdnstream: constant lifetime needs window ≥ 1 (got %d)", s.Window)
		}
		return ConstantLifetime(s.Window), nil
	case "geometric":
		if s.P <= 0 || s.P >= 1 {
			return nil, fmt.Errorf("tdnstream: geometric lifetime needs p ∈ (0,1) (got %g)", s.P)
		}
		if s.L < 1 {
			return nil, fmt.Errorf("tdnstream: geometric lifetime needs L ≥ 1 (got %d)", s.L)
		}
		return GeometricLifetime(s.P, s.L, s.Seed), nil
	case "uniform":
		if s.Lo < 1 || s.Hi < s.Lo {
			return nil, fmt.Errorf("tdnstream: uniform lifetime needs 1 ≤ lo ≤ hi (got [%d,%d])", s.Lo, s.Hi)
		}
		return UniformLifetime(s.Lo, s.Hi, s.Seed), nil
	case "zipf":
		if s.L < 1 {
			return nil, fmt.Errorf("tdnstream: zipf lifetime needs L ≥ 1 (got %d)", s.L)
		}
		return ZipfLifetime(s.S, s.L, s.Seed), nil
	default:
		return nil, fmt.Errorf("tdnstream: unknown lifetime policy %q (want one of %s)",
			s.Policy, strings.Join(LifetimePolicies(), ", "))
	}
}

// ReadNDJSON parses NDJSON interaction records ({"src":"a","dst":"b","t":1}),
// interning labels in dict. "t" may be omitted by producers feeding an
// arrival-clocked consumer; it defaults to 0.
func ReadNDJSON(r io.Reader, dict *Dict) ([]Interaction, error) { return stream.ReadNDJSON(r, dict) }

// WriteNDJSON encodes interactions as NDJSON records; pass a nil dict to
// write numeric ids.
func WriteNDJSON(w io.Writer, in []Interaction, dict *Dict) error {
	return stream.WriteNDJSON(w, in, dict)
}

// TrackerNow reports the tracker's current time step, for trackers that
// expose it (the streaming sieve family). A service restoring a checkpoint
// uses it to resume the stream clock without replaying history.
func TrackerNow(tr Tracker) (int64, bool) {
	if n, ok := tr.(interface{ Now() int64 }); ok {
		return n.Now(), true
	}
	return 0, false
}
