package tdnstream_test

import (
	"bytes"
	"strings"
	"testing"

	"tdnstream"
)

func TestPipelineEndToEnd(t *testing.T) {
	in, err := tdnstream.Dataset("brightkite", 400)
	if err != nil {
		t.Fatal(err)
	}
	pipe := tdnstream.NewPipeline(
		tdnstream.NewHistApprox(5, 0.2, 100),
		tdnstream.GeometricLifetime(0.02, 100, 1),
	)
	steps := 0
	if err := pipe.Run(in, func(tt int64) error { steps++; return nil }); err != nil {
		t.Fatal(err)
	}
	if steps != 400 {
		t.Fatalf("ran %d steps, want 400", steps)
	}
	sol := pipe.Solution()
	if sol.Value <= 0 || len(sol.Seeds) == 0 {
		t.Fatalf("no solution after run: %+v", sol)
	}
	if len(sol.Seeds) > 5 {
		t.Fatalf("budget exceeded: %d seeds", len(sol.Seeds))
	}
	if pipe.OracleCalls() == 0 {
		t.Fatal("no oracle calls recorded")
	}
	if pipe.Now() != 400 {
		t.Fatalf("Now() = %d, want 400", pipe.Now())
	}
}

func TestPipelineValidation(t *testing.T) {
	pipe := tdnstream.NewPipeline(tdnstream.NewHistApprox(2, 0.1, 10), tdnstream.ConstantLifetime(3))
	if err := pipe.ObserveBatch(1, []tdnstream.Interaction{{Src: 1, Dst: 1, T: 1}}); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := pipe.ObserveBatch(1, []tdnstream.Interaction{{Src: 1, Dst: 2, T: 9}}); err == nil {
		t.Fatal("mistimed interaction accepted")
	}
	if err := pipe.ObserveBatch(1, []tdnstream.Interaction{{Src: 1, Dst: 2, T: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := pipe.ObserveBatch(1, nil); err == nil {
		t.Fatal("repeated time accepted")
	}
}

func TestNewPipelinePanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tdnstream.NewPipeline(nil, nil)
}

func TestAllTrackerConstructors(t *testing.T) {
	in, err := tdnstream.Dataset("twitter-hk", 120)
	if err != nil {
		t.Fatal(err)
	}
	trackers := []tdnstream.Tracker{
		tdnstream.NewSieveADN(3, 0.2),
		tdnstream.NewBasicReduction(3, 0.2, 30),
		tdnstream.NewHistApprox(3, 0.2, 30),
		tdnstream.NewHistApproxRefined(3, 0.2, 30),
		tdnstream.NewGreedy(3),
		tdnstream.NewRandom(3, 7),
		tdnstream.NewDIM(3, 2, 7),
		tdnstream.NewIMM(3, 0.3, 7),
		tdnstream.NewTIMPlus(3, 0.3, 7),
	}
	for _, tr := range trackers {
		pipe := tdnstream.NewPipeline(tr, tdnstream.GeometricLifetime(0.05, 30, 2))
		if err := pipe.Run(in, nil); err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		sol := pipe.Solution()
		if len(sol.Seeds) > 3 {
			t.Fatalf("%s: budget exceeded (%d seeds)", tr.Name(), len(sol.Seeds))
		}
		if sol.Value < 0 {
			t.Fatalf("%s: negative value", tr.Name())
		}
	}
}

func TestDatasetNamesAndErrors(t *testing.T) {
	names := tdnstream.DatasetNames()
	if len(names) != 6 {
		t.Fatalf("DatasetNames() = %v", names)
	}
	if _, err := tdnstream.Dataset("not-a-dataset", 10); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestCSVRoundTripThroughFacade(t *testing.T) {
	dict := tdnstream.NewDict()
	in := []tdnstream.Interaction{
		{Src: dict.ID("p1"), Dst: dict.ID("u1"), T: 1},
		{Src: dict.ID("p1"), Dst: dict.ID("u2"), T: 2},
	}
	var buf bytes.Buffer
	if err := tdnstream.WriteCSV(&buf, in, dict); err != nil {
		t.Fatal(err)
	}
	got, err := tdnstream.ReadCSV(strings.NewReader(buf.String()), tdnstream.NewDict())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("round trip lost rows: %d", len(got))
	}
}

func TestLifetimeConstructors(t *testing.T) {
	probe := tdnstream.Interaction{Src: 1, Dst: 2, T: 0}
	for _, a := range []tdnstream.Assigner{
		tdnstream.ConstantLifetime(5),
		tdnstream.GeometricLifetime(0.1, 50, 1),
		tdnstream.UniformLifetime(2, 9, 1),
		tdnstream.ZipfLifetime(1.5, 40, 1),
	} {
		l := a.Assign(probe)
		if l < 1 || l > a.Max() {
			t.Fatalf("%s: lifetime %d out of [1,%d]", a.String(), l, a.Max())
		}
	}
}

// The headline behaviour of the whole library: on a drifting stream,
// HistApprox's influential set follows the drift while staying close to
// greedy's quality.
func TestHistApproxTracksGreedyOnDrift(t *testing.T) {
	in, err := tdnstream.Dataset("brightkite", 1200)
	if err != nil {
		t.Fatal(err)
	}
	hist := tdnstream.NewPipeline(tdnstream.NewHistApprox(5, 0.1, 200), tdnstream.GeometricLifetime(0.01, 200, 3))
	greedy := tdnstream.NewPipeline(tdnstream.NewGreedy(5), tdnstream.GeometricLifetime(0.01, 200, 3))
	var histSum, greedySum float64
	samples := 0
	err = hist.Run(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	// drive greedy separately (identical lifetimes by same seed)
	err = greedy.Run(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	histSum += float64(hist.Solution().Value)
	greedySum += float64(greedy.Solution().Value)
	samples++
	if histSum < 0.7*greedySum {
		t.Fatalf("HistApprox value %.0f below 70%% of greedy %.0f", histSum, greedySum)
	}
}

func TestExplainFacade(t *testing.T) {
	tr := tdnstream.NewHistApprox(2, 0.1, 50)
	pipe := tdnstream.NewPipeline(tr, tdnstream.ConstantLifetime(50))
	if got := tdnstream.Explain(tr); got != nil {
		t.Fatalf("Explain before data = %v", got)
	}
	if err := pipe.ObserveBatch(1, []tdnstream.Interaction{
		{Src: 0, Dst: 1, T: 1}, {Src: 0, Dst: 2, T: 1}, {Src: 5, Dst: 6, T: 1},
	}); err != nil {
		t.Fatal(err)
	}
	contribs := tdnstream.Explain(tr)
	sum := 0
	for _, c := range contribs {
		sum += c.Gain
	}
	if sum != pipe.Solution().Value {
		t.Fatalf("contribution sum %d != value %d", sum, pipe.Solution().Value)
	}
	// Baselines do not support it.
	if got := tdnstream.Explain(tdnstream.NewGreedy(2)); got != nil {
		t.Fatal("greedy should not support Explain")
	}
}

// Batched arrivals end to end: the same interactions compressed to 20
// per step still respect all tracker contracts.
func TestRebatchEndToEnd(t *testing.T) {
	in, err := tdnstream.Dataset("twitter-higgs", 400)
	if err != nil {
		t.Fatal(err)
	}
	batched := tdnstream.Rebatch(in, 20)
	pipe := tdnstream.NewPipeline(tdnstream.NewHistApprox(5, 0.2, 50), tdnstream.GeometricLifetime(0.05, 50, 4))
	steps := 0
	if err := pipe.Run(batched, func(tt int64) error { steps++; return nil }); err != nil {
		t.Fatal(err)
	}
	if steps != 20 {
		t.Fatalf("ran %d steps, want 20", steps)
	}
	if sol := pipe.Solution(); sol.Value <= 0 || len(sol.Seeds) > 5 {
		t.Fatalf("bad solution %+v", sol)
	}
}
