package tdnstream_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"tdnstream"
)

func TestSaveLoadTrackerThroughFacade(t *testing.T) {
	in, err := tdnstream.Dataset("gowalla", 600)
	if err != nil {
		t.Fatal(err)
	}
	first, second := in[:300], in[300:]

	for _, mk := range []func() tdnstream.Tracker{
		func() tdnstream.Tracker { return tdnstream.NewHistApprox(4, 0.2, 200) },
		func() tdnstream.Tracker { return tdnstream.NewHistApproxRefined(4, 0.2, 200) },
		func() tdnstream.Tracker { return tdnstream.NewBasicReduction(4, 0.2, 50) },
		func() tdnstream.Tracker { return tdnstream.NewSieveADN(4, 0.2) },
	} {
		orig := mk()
		pipeA := tdnstream.NewPipeline(orig, tdnstream.GeometricLifetime(0.01, 200, 9))
		if err := pipeA.Run(first, nil); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tdnstream.SaveTracker(&buf, orig); err != nil {
			t.Fatalf("%s: %v", orig.Name(), err)
		}
		restored, err := tdnstream.LoadTracker(&buf)
		if err != nil {
			t.Fatalf("%s: %v", orig.Name(), err)
		}
		if restored.Name() != orig.Name() {
			t.Fatalf("kind lost: %q vs %q", restored.Name(), orig.Name())
		}

		// Resume both with identical lifetimes: the assigner must also be
		// replayed from the same state, so rebuild fresh assigners and
		// burn the first half's draws.
		assignA := tdnstream.GeometricLifetime(0.01, 200, 10)
		assignB := tdnstream.GeometricLifetime(0.01, 200, 10)
		pa := tdnstream.NewPipeline(orig, assignA)
		pb := tdnstream.NewPipeline(restored, assignB)
		for i := range second {
			batch := second[i : i+1]
			if err := pa.ObserveBatch(batch[0].T, batch); err != nil {
				t.Fatal(err)
			}
			if err := pb.ObserveBatch(batch[0].T, batch); err != nil {
				t.Fatal(err)
			}
		}
		sa, sb := pa.Solution(), pb.Solution()
		if sa.Value != sb.Value {
			t.Fatalf("%s: diverged after restore: %d vs %d", orig.Name(), sa.Value, sb.Value)
		}
	}
}

// TestSaveLoadShardedEngine: a sharded tracker (TrackerSpec.Shards ≥ 2)
// round-trips through the same facade — per-partition states travel in
// the envelope, routing is preserved, and the restored engine makes
// identical decisions on the remaining stream.
func TestSaveLoadShardedEngine(t *testing.T) {
	in, err := tdnstream.Dataset("twitter-higgs", 800)
	if err != nil {
		t.Fatal(err)
	}
	first, second := in[:400], in[400:]
	for second[0].T == first[len(first)-1].T {
		first, second = in[:len(first)+1], in[len(first)+1:]
	}

	spec := tdnstream.TrackerSpec{Algo: "histapprox", K: 5, Eps: 0.2, L: 300, Shards: 4}
	orig, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	pipeA := tdnstream.NewPipeline(orig, tdnstream.ConstantLifetime(200))
	if err := pipeA.Run(first, nil); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tdnstream.SaveTracker(&buf, orig); err != nil {
		t.Fatal(err)
	}
	restored, err := tdnstream.LoadTracker(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Name() != orig.Name() {
		t.Fatalf("kind lost: %q vs %q", restored.Name(), orig.Name())
	}
	nowA, _ := tdnstream.TrackerNow(orig)
	nowB, ok := tdnstream.TrackerNow(restored)
	if !ok || nowB != nowA {
		t.Fatalf("restored clock %d (ok=%v), want %d", nowB, ok, nowA)
	}

	pa := tdnstream.NewPipeline(orig, tdnstream.ConstantLifetime(200))
	pb := tdnstream.NewPipeline(restored, tdnstream.ConstantLifetime(200))
	if err := pa.Run(second, nil); err != nil {
		t.Fatal(err)
	}
	if err := pb.Run(second, nil); err != nil {
		t.Fatal(err)
	}
	sa, sb := pa.Solution(), pb.Solution()
	if sa.Value != sb.Value || !reflect.DeepEqual(sa.Seeds, sb.Seeds) {
		t.Fatalf("sharded engine diverged after restore: %+v vs %+v", sa, sb)
	}
	if ex := tdnstream.Explain(restored); len(ex) != len(sb.Seeds) {
		t.Fatalf("sharded explain: %d contributions for %d seeds", len(ex), len(sb.Seeds))
	}
}

func TestSaveTrackerUnsupported(t *testing.T) {
	var buf bytes.Buffer
	if err := tdnstream.SaveTracker(&buf, tdnstream.NewGreedy(2)); err == nil {
		t.Fatal("greedy snapshot should be unsupported")
	}
}

func TestLoadTrackerGarbage(t *testing.T) {
	if _, err := tdnstream.LoadTracker(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}
