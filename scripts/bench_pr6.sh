#!/usr/bin/env bash
# bench_pr6.sh [output.json] [duration]
#
# Measures the serving stack under the chaos/load harness
# (cmd/influtrack-loadgen), end to end over HTTP against a spawned
# influtrackd:
#
#   * ingest throughput and p50/p99/p999 latency with -wal-fsync always
#     at 8 concurrent ingesters, with the sharded group-commit wait
#     queue (default) vs a single commit shard (the PR-5 layout) —
#     commit_shard_speedup records the ratio;
#   * a full chaos pass — disk-full window, slow-fsync phase, kill -9
#     mid-traffic with restart + WAL-replay re-host — whose built-in
#     verification must report zero acked-record loss and a healthy
#     final state (the loadgen exits non-zero otherwise, failing this
#     script).
#
# Default duration is 20s per throughput run (pass e.g. "8s" for a CI
# smoke run). The chaos pass runs a fixed throttled 15s schedule so the
# post-kill WAL replay stays bounded.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR6.json}"
dur="${2:-20s}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/influtrackd" ./cmd/influtrackd
go build -o "$tmp/loadgen" ./cmd/influtrack-loadgen

run_loadgen() { # report port commit_shards loadgen-args...
    local report="$1" port="$2" shards="$3"
    shift 3
    rm -rf "$tmp/wal"
    "$tmp/loadgen" \
        -spawn "$tmp/influtrackd -addr 127.0.0.1:$port -wal-dir $tmp/wal -wal-fsync always -wal-commit-shards $shards -fault-inject" \
        -addr "http://127.0.0.1:$port" \
        -streams 2 -queriers 2 -subscribers 2 -batch 100 \
        -json "$report" "$@"
}

# Unthrottled ingesters ack records several times faster than the
# trackers process them, so a throughput run banks a backlog that takes
# a multiple of the traffic phase to drain — give verification room.
echo "== throughput: -wal-fsync always, 8 ingesters, sharded group commit (default)"
run_loadgen "$tmp/sharded.json" 8183 0 -ingesters 8 -duration "$dur" -settle 6m
echo "== throughput: single commit shard (PR-5 layout)"
run_loadgen "$tmp/single.json" 8184 1 -ingesters 8 -duration "$dur" -settle 6m
echo "== chaos: diskfull + slowfsync + kill -9; the ledger must balance"
run_loadgen "$tmp/chaos.json" 8185 0 -ingesters 4 -rate 10 -duration 15s \
    -chaos "diskfull@3s/2s,slowfsync@7s/2s/20ms,kill@11s"

# field FILE KEY — first occurrence wins, which for the latency keys is
# the ingest histogram (it precedes the query one in the report).
field() { grep -m1 -o "\"$2\": [0-9.]*" "$1" | grep -o '[0-9.]*$'; }
okflag() { if grep -q '"ok": true' "$1"; then echo true; else echo false; fi; }

sharded_rps=$(field "$tmp/sharded.json" records_per_sec)
single_rps=$(field "$tmp/single.json" records_per_sec)
speedup=$(awk -v a="$sharded_rps" -v b="$single_rps" 'BEGIN { if (b + 0 > 0) printf "%.3f", a / b; else print "null" }')

{
    echo "{"
    echo "  \"suite\": \"pr6-chaos-load\","
    echo "  \"description\": \"cmd/influtrack-loadgen against a spawned influtrackd over HTTP: ingest throughput and latency percentiles with -wal-fsync always at 8 concurrent ingesters (sharded group-commit queue vs single shard), plus a chaos pass (disk-full, slow fsync, kill -9 + WAL-replay re-host) whose ledger must show zero acked-record loss. Latencies are per 100-record batch request.\","
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"duration\": \"$dur\","
    for run in sharded single chaos; do
        f="$tmp/$run.json"
        key="always_sharded"
        [ "$run" = single ] && key="always_single_shard"
        [ "$run" = chaos ] && key="chaos"
        echo "  \"$key\": {"
        echo "    \"records_per_sec\": $(field "$f" records_per_sec),"
        echo "    \"ingest_p50_ms\": $(field "$f" p50_ms),"
        echo "    \"ingest_p99_ms\": $(field "$f" p99_ms),"
        echo "    \"ingest_p999_ms\": $(field "$f" p999_ms),"
        echo "    \"http_503\": $(field "$f" http_503),"
        if [ "$run" = chaos ]; then
            echo "    \"lost_acked\": $(field "$f" lost_acked),"
            echo "    \"net_errors\": $(field "$f" net_errors),"
        fi
        echo "    \"verify_ok\": $(okflag "$f")"
        echo "  },"
    done
    echo "  \"commit_shard_speedup\": $speedup"
    echo "}"
} > "$out"

echo "wrote $out"
