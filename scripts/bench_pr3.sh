#!/usr/bin/env bash
# bench_pr3.sh [output.json] [benchtime]
#
# Measures the sharded tracking engine (internal/shard) end to end
# through the serving layer: HTTP POST → NDJSON decode → bounded queue →
# worker → shard.Engine (source-hash partition, concurrent per-shard
# Steps, global top-k merge), fully processed. Records interactions/sec
# for the single tracker vs 2/4/8 shards on the new-pair-heavy
# twitter-higgs stream (the tracker-bound worst case sharding exists
# for) and single vs 4 shards on brightkite (the repeat-heavy stream
# where the serving layer dominates). The PR-3 acceptance gate is
# speedup_higgs_4shards >= 2. Default output is BENCH_PR3.json;
# benchtime defaults to 5x (pass e.g. "1x" for a CI smoke run).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR3.json}"
benchtime="${2:-5x}"
pattern='BenchmarkIngestHTTPSieveHiggs$|BenchmarkIngestHTTPSieveHiggsShards2$|BenchmarkIngestHTTPSieveHiggsShards4$|BenchmarkIngestHTTPSieveHiggsShards8$|BenchmarkIngestHTTPSieve$|BenchmarkIngestHTTPSieveShards4$'

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test ./internal/server -run '^$' \
  -bench "$pattern" -benchtime "$benchtime" -count 1 | tee "$raw"

{
    echo "{"
    echo "  \"suite\": \"pr3-sharded-engine-ingest\","
    echo "  \"description\": \"End-to-end ingest throughput through internal/server with the internal/shard partitioned engine (source-hash partitions, concurrent per-shard Steps, global greedy top-k merge) vs the single tracker. speedup_higgs_4shards is the acceptance number (>= 2x on the new-pair-heavy twitter-higgs workload).\","
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"benchtime\": \"$benchtime\","
    awk '/^cpu:/ { sub(/^cpu: */, ""); printf "  \"cpu\": \"%s\",\n", $0; exit }' "$raw"
    echo "  \"benchmarks\": ["
    awk '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ips = "null"
        for (i = 3; i < NF; i++) {
            if ($(i + 1) == "interactions/sec") ips = $i
        }
        if (n++) printf ",\n"
        printf "    {\"name\": \"%s\", \"iters\": %s, \"interactions_per_sec\": %s}", name, $2, ips
    }
    END { printf "\n" }
    ' "$raw"
    echo "  ],"
    awk '
    function ips(   v, i) {
        v = "null"
        for (i = 3; i < NF; i++) if ($(i + 1) == "interactions/sec") v = $i
        return v
    }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        if (name == "BenchmarkIngestHTTPSieveHiggs") single = ips()
        if (name == "BenchmarkIngestHTTPSieveHiggsShards4") sharded = ips()
    }
    END {
        printf "  \"ingest_throughput_higgs_single_interactions_per_sec\": %s,\n", (single == "" ? "null" : single)
        printf "  \"ingest_throughput_higgs_4shards_interactions_per_sec\": %s,\n", (sharded == "" ? "null" : sharded)
        if (single != "" && sharded != "" && single != "null" && sharded != "null" && single + 0 > 0)
            printf "  \"speedup_higgs_4shards\": %.2f\n", sharded / single
        else
            printf "  \"speedup_higgs_4shards\": null\n"
    }
    ' "$raw"
    echo "}"
} > "$out"

echo "wrote $out"
