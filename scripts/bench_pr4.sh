#!/usr/bin/env bash
# bench_pr4.sh [output.json] [benchtime]
#
# Measures the internal/notify push subsystem end to end:
#
#   * publish→deliver fan-out latency (p50/p99) and aggregate delivery
#     throughput at 1 / 100 / 1000 live subscribers (BenchmarkFanoutN in
#     internal/notify: each publish emits one entered + one left event
#     and the publisher waits for the whole fleet to drain, so the
#     number is per-publish fan-out latency, not synthetic queueing);
#   * the differ's per-publish diff cost (BenchmarkDiff);
#   * end-to-end HTTP ingest throughput with the notify hook live —
#     plain (no subscribers) and with 100 / 1000 subscribers attached —
#     plus the sharded-higgs workload, so the numbers line up against
#     the BENCH_PR3.json baselines.
#
# The PR-4 acceptance gates: fanout_p99_ms_1000subs < 50, and the plain
# ingest numbers within 10% of the figures recorded in BENCH_PR3.json
# (ratio_vs_pr3_* >= 0.9) — push must not tax the pull path. Default
# output is BENCH_PR4.json; benchtime defaults to 300x for the fan-out
# benches and 3x for ingest (pass e.g. "1x" to force a CI smoke run of
# everything).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR4.json}"
benchtime="${2:-}"
fan_benchtime="${benchtime:-300x}"
ingest_benchtime="${benchtime:-3x}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test ./internal/notify -run '^$' \
  -bench 'BenchmarkFanout1$|BenchmarkFanout100$|BenchmarkFanout1000$|BenchmarkDiff$' \
  -benchtime "$fan_benchtime" -count 1 | tee "$raw"
go test ./internal/server -run '^$' \
  -bench 'BenchmarkIngestHTTPSieve$|BenchmarkIngestHTTPSieveSubscribers100$|BenchmarkIngestHTTPSieveSubscribers1000$|BenchmarkIngestHTTPSieveHiggsShards4$' \
  -benchtime "$ingest_benchtime" -count 1 | tee -a "$raw"

# Baselines recorded by scripts/bench_pr3.sh (null when absent, e.g. in CI).
pr3_sieve=null
pr3_higgs4=null
if [ -f BENCH_PR3.json ]; then
    pr3_sieve=$(grep -o '"name": "BenchmarkIngestHTTPSieve", "iters": [0-9]*, "interactions_per_sec": [0-9.]*' BENCH_PR3.json | grep -o '[0-9.]*$' || echo null)
    pr3_higgs4=$(grep -o '"name": "BenchmarkIngestHTTPSieveHiggsShards4", "iters": [0-9]*, "interactions_per_sec": [0-9.]*' BENCH_PR3.json | grep -o '[0-9.]*$' || echo null)
fi

{
    echo "{"
    echo "  \"suite\": \"pr4-notify-push-subsystem\","
    echo "  \"description\": \"internal/notify top-k change push: per-publish fan-out latency to N SSE/WebSocket-shaped subscribers (publish -> bounded per-subscriber queue -> drain), differ cost, and end-to-end HTTP ingest throughput with the notify publish hook live, with and without attached subscribers. Acceptance: fanout_p99_ms_1000subs < 50 and plain ingest within 10% of the BENCH_PR3.json figures.\","
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"fanout_benchtime\": \"$fan_benchtime\","
    echo "  \"ingest_benchtime\": \"$ingest_benchtime\","
    awk '/^cpu:/ { sub(/^cpu: */, ""); printf "  \"cpu\": \"%s\",\n", $0; exit }' "$raw"
    echo "  \"benchmarks\": ["
    awk '
    function metric(unit,   v, i) {
        v = "null"
        for (i = 3; i < NF; i++) if ($(i + 1) == unit) v = $i
        return v
    }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        if (n++) printf ",\n"
        printf "    {\"name\": \"%s\", \"iters\": %s", name, $2
        ips = metric("interactions/sec"); if (ips != "null") printf ", \"interactions_per_sec\": %s", ips
        dps = metric("deliveries/sec");   if (dps != "null") printf ", \"deliveries_per_sec\": %s", dps
        p50 = metric("p50_ms");           if (p50 != "null") printf ", \"p50_ms\": %s", p50
        p99 = metric("p99_ms");           if (p99 != "null") printf ", \"p99_ms\": %s", p99
        printf "}"
    }
    END { printf "\n" }
    ' "$raw"
    echo "  ],"
    awk -v pr3_sieve="$pr3_sieve" -v pr3_higgs4="$pr3_higgs4" '
    function metric(unit,   v, i) {
        v = ""
        for (i = 3; i < NF; i++) if ($(i + 1) == unit) v = $i
        return v
    }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        if (name == "BenchmarkFanout1000")                       { p99_1000 = metric("p99_ms"); dps_1000 = metric("deliveries/sec") }
        if (name == "BenchmarkFanout100")                        p99_100 = metric("p99_ms")
        if (name == "BenchmarkFanout1")                          p99_1 = metric("p99_ms")
        if (name == "BenchmarkIngestHTTPSieve")                  sieve = metric("interactions/sec")
        if (name == "BenchmarkIngestHTTPSieveSubscribers100")    subs100 = metric("interactions/sec")
        if (name == "BenchmarkIngestHTTPSieveSubscribers1000")   subs1000 = metric("interactions/sec")
        if (name == "BenchmarkIngestHTTPSieveHiggsShards4")      higgs4 = metric("interactions/sec")
    }
    function num(v) { return (v == "" ? "null" : v) }
    END {
        printf "  \"fanout_p99_ms_1subs\": %s,\n", num(p99_1)
        printf "  \"fanout_p99_ms_100subs\": %s,\n", num(p99_100)
        printf "  \"fanout_p99_ms_1000subs\": %s,\n", num(p99_1000)
        printf "  \"fanout_deliveries_per_sec_1000subs\": %s,\n", num(dps_1000)
        printf "  \"ingest_sieve_interactions_per_sec\": %s,\n", num(sieve)
        printf "  \"ingest_sieve_100subs_interactions_per_sec\": %s,\n", num(subs100)
        printf "  \"ingest_sieve_1000subs_interactions_per_sec\": %s,\n", num(subs1000)
        printf "  \"ingest_higgs_4shards_interactions_per_sec\": %s,\n", num(higgs4)
        printf "  \"pr3_baseline_sieve_interactions_per_sec\": %s,\n", pr3_sieve
        printf "  \"pr3_baseline_higgs_4shards_interactions_per_sec\": %s,\n", pr3_higgs4
        if (sieve != "" && pr3_sieve != "null" && pr3_sieve + 0 > 0)
            printf "  \"ratio_vs_pr3_sieve\": %.3f,\n", sieve / pr3_sieve
        else
            printf "  \"ratio_vs_pr3_sieve\": null,\n"
        if (higgs4 != "" && pr3_higgs4 != "null" && pr3_higgs4 + 0 > 0)
            printf "  \"ratio_vs_pr3_higgs_4shards\": %.3f\n", higgs4 / pr3_higgs4
        else
            printf "  \"ratio_vs_pr3_higgs_4shards\": null\n"
    }
    ' "$raw"
    echo "}"
} > "$out"

echo "wrote $out"
