#!/usr/bin/env bash
# bench_pr10.sh [output.json] [duration] [gate_pct] [churn_subs] [soak_dur] [soak_window]
#
# Two-part benchmark for the PR-10 flight recorder + soak/churn harness.
#
# Part 1 — overhead: the same -wal-fsync always, 8-concurrent-ingester
# serving run as BENCH_PR7/PR8/PR9, with the flight recorder on (the
# default: lifecycle Record calls plus the Warn+ tee slog handler) vs
# -flight-recorder=false. Each config runs twice, interleaved
# (on/off/on/off), and the best throughput per config is compared:
# single runs on shared hardware swing several percent run-to-run,
# which would drown a sub-1% signal, while peak-vs-peak cancels the
# machine drift. overhead_pct = (off - on) / off * 100; gated <=
# gate_pct (default 1). CI smoke runs pass a looser gate.
#
# Part 2 — the acceptance soak: churn_subs SSE subscribers (default
# 10000 — the roadmap's 10k-connection mark; CI smoke passes a smaller
# count) cycling connect → consume → Last-Event-ID resume → disconnect
# every few seconds while throttled zipfian ingest runs for soak_dur
# (default 10m; CI smoke passes seconds), with -report-interval
# (soak_window, default 30s) turning the run into a soak — per-window
# SLO evaluation against a generous latency budget plus the
# zero-acked-record-loss ledger, failing fast at the first breached
# window. Gates: the run's own SLO/ledger verdict, at least one full
# churn cycle per subscriber on average, and at least one successful
# resume.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR10.json}"
dur="${2:-20s}"
gate="${3:-1}"
subs="${4:-10000}"
soak_dur="${5:-10m}"
soak_win="${6:-30s}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# 10k SSE connections need the descriptors to carry them.
ulimit -n 65536 2> /dev/null || true

go build -o "$tmp/influtrackd" ./cmd/influtrackd
go build -o "$tmp/loadgen" ./cmd/influtrack-loadgen

# ---- Part 1: flight-recorder overhead under the fsync-bound run ----

run_loadgen() { # report port daemon-extra-flags
    local report="$1" port="$2" extra="$3"
    rm -rf "$tmp/wal"
    "$tmp/loadgen" \
        -spawn "$tmp/influtrackd -addr 127.0.0.1:$port -wal-dir $tmp/wal -wal-fsync always $extra" \
        -addr "http://127.0.0.1:$port" \
        -streams 2 -queriers 2 -subscribers 2 -batch 100 \
        -ingesters 8 -duration "$dur" -settle 12m \
        -json "$report"
}

for i in 1 2; do
    echo "== flight on ($i/2): recorder + tee handler (the default)"
    run_loadgen "$tmp/on$i.json" 8200 ""
    echo "== flight off ($i/2): -flight-recorder=false"
    run_loadgen "$tmp/off$i.json" 8201 "-flight-recorder=false"
done

# field FILE KEY — first occurrence of a loadgen-report numeric field.
# Tolerates absence (omitempty keys like churn_cycles render only when
# non-zero): callers default with ${var:-0} and the awk gates below
# fail loudly on zeros rather than the extraction failing silently.
field() { grep -m1 -o "\"$2\": [0-9.]*" "$1" | grep -o '[0-9.]*$' || true; }
okflag() { if grep -q '"ok": true' "$1"; then echo true; else echo false; fi; }

# Keep the better run of each config (symlinked to the unsuffixed name
# so the report block below reads the winning run's figures).
best() { # config -> links $tmp/<config>.json to the higher-rps run
    local a b
    a=$(field "$tmp/$1"1.json records_per_sec)
    b=$(field "$tmp/$1"2.json records_per_sec)
    if awk -v a="${a:-0}" -v b="${b:-0}" 'BEGIN { exit !(a + 0 >= b + 0) }'; then
        ln -sf "$tmp/$1"1.json "$tmp/$1.json"
    else
        ln -sf "$tmp/$1"2.json "$tmp/$1.json"
    fi
}
best on
best off

on_rps=$(field "$tmp/on.json" records_per_sec)
off_rps=$(field "$tmp/off.json" records_per_sec)
overhead=$(awk -v on="$on_rps" -v off="$off_rps" \
    'BEGIN { if (off + 0 > 0) printf "%.2f", (off - on) / off * 100; else print "null" }')

# ---- Part 2: the soak — subscriber churn + per-window SLO eval ----

echo "== soak: $soak_dur with $subs subscribers cycling every 3s, windows every $soak_win"
"$tmp/loadgen" \
    -spawn "$tmp/influtrackd -addr 127.0.0.1:8202" \
    -addr "http://127.0.0.1:8202" \
    -streams 2 -ingesters 2 -queriers 1 -batch 100 -rate 20 \
    -subscribers "$subs" -subscriber-churn 3s \
    -report-interval "$soak_win" -duration "$soak_dur" -settle 12m \
    -slo "ingest_p99=60s,lost_acked=0" \
    -json "$tmp/churn.json"

churn_cycles=$(field "$tmp/churn.json" churn_cycles)
resumes=$(field "$tmp/churn.json" resumes)
drops=$(field "$tmp/churn.json" reconnects)
windows=$(grep -c '"index":' "$tmp/churn.json" || true)

{
    echo "{"
    echo "  \"suite\": \"pr10-flight-recorder\","
    echo "  \"description\": \"Part 1: cmd/influtrack-loadgen against a spawned influtrackd (-wal-fsync always, 8 concurrent ingesters, 100-record batches), flight recorder + Warn+ tee handler on (default) vs -flight-recorder=false, best of two interleaved runs per config to cancel machine drift; overhead_pct gated <= ${gate}%. Part 2: a ${soak_dur} soak with ${subs} SSE subscribers churning connect/Last-Event-ID-resume/disconnect every 3s under throttled zipfian ingest, -report-interval ${soak_win} windows each evaluated against the SLO budgets (fail-fast on first breach) and ledger-verified zero acked-record loss.\","
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"duration\": \"$dur\","
    echo "  \"gate_pct\": $gate,"
    for run in on off; do
        f="$tmp/$run.json"
        echo "  \"flight_$run\": {"
        echo "    \"records_per_sec\": $(field "$f" records_per_sec),"
        echo "    \"ingest_p50_ms\": $(field "$f" p50_ms),"
        echo "    \"ingest_p99_ms\": $(field "$f" p99_ms),"
        echo "    \"ingest_p999_ms\": $(field "$f" p999_ms),"
        echo "    \"verify_ok\": $(okflag "$f")"
        echo "  },"
    done
    echo "  \"overhead_pct\": $overhead,"
    echo "  \"soak\": {"
    echo "    \"duration\": \"$soak_dur\","
    echo "    \"window\": \"$soak_win\","
    echo "    \"subscribers\": $subs,"
    echo "    \"churn_cycles\": ${churn_cycles:-0},"
    echo "    \"resumes\": ${resumes:-0},"
    echo "    \"subscriber_drops\": ${drops:-0},"
    echo "    \"soak_windows\": ${windows:-0},"
    echo "    \"verify_ok\": $(okflag "$tmp/churn.json")"
    echo "  }"
    echo "}"
} > "$out"

echo "wrote $out"

awk -v o="$overhead" -v g="$gate" 'BEGIN {
    if (o + 0 > g + 0) { printf "flight-recorder overhead %.2f%% exceeds the %.2f%% gate\n", o, g; exit 1 }
    printf "flight-recorder overhead %.2f%% within the %.2f%% gate\n", o, g
}'

awk -v c="${churn_cycles:-0}" -v r="${resumes:-0}" -v s="$subs" -v w="${windows:-0}" 'BEGIN {
    if (c + 0 < s + 0) { printf "churn_cycles %s under one cycle per subscriber (%s)\n", c, s; exit 1 }
    if (r + 0 < 1)     { printf "no successful Last-Event-ID resumes recorded\n"; exit 1 }
    if (w + 0 < 1)     { printf "soak recorded no windows\n"; exit 1 }
    printf "soak: %s windows; churn: %s cycles across %s subscribers, %s resumes\n", w, c, s, r
}'
if ! grep -q '"ok": true' "$tmp/churn.json"; then
    echo "soak run did not pass its own SLO/ledger verdict" >&2
    exit 1
fi
