#!/usr/bin/env bash
# bench_pr7.sh [output.json] [duration]
#
# Measures what the PR-7 telemetry costs: the same -wal-fsync always,
# 8-concurrent-ingester serving run as BENCH_PR6's always_sharded
# figure, once with the default tracing/histogram pipeline on and once
# with -trace=false, plus the client-vs-server latency split the
# loadgen's new "server" report section provides (the daemon's own
# ingest p99 scraped from /metrics next to the client-observed one).
#
#   * trace_on / trace_off: records/sec and ingest latency percentiles;
#   * overhead_pct: (off - on) / off * 100 — the acceptance gate is
#     <= 5% against the full-telemetry run;
#   * server_ingest_p99_ms: the daemon-side histogram for the traced
#     run — server p99 <= client p99 always; the gap is the HTTP stack.
#
# Default duration is 20s per run (pass e.g. "8s" for a CI smoke run).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR7.json}"
dur="${2:-20s}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/influtrackd" ./cmd/influtrackd
go build -o "$tmp/loadgen" ./cmd/influtrack-loadgen

run_loadgen() { # report port daemon-extra-flags
    local report="$1" port="$2" extra="$3"
    rm -rf "$tmp/wal"
    "$tmp/loadgen" \
        -spawn "$tmp/influtrackd -addr 127.0.0.1:$port -wal-dir $tmp/wal -wal-fsync always $extra" \
        -addr "http://127.0.0.1:$port" \
        -streams 2 -queriers 2 -subscribers 2 -batch 100 \
        -ingesters 8 -duration "$dur" -settle 6m \
        -json "$report"
}

echo "== telemetry on (default): tracing + stage histograms + serving summaries"
run_loadgen "$tmp/on.json" 8186 ""
echo "== telemetry off: -trace=false"
run_loadgen "$tmp/off.json" 8187 "-trace=false"

# field FILE KEY — first occurrence wins, which for the latency keys is
# the client-side ingest histogram (it precedes the query one).
field() { grep -m1 -o "\"$2\": [0-9.]*" "$1" | grep -o '[0-9.]*$'; }
okflag() { if grep -q '"ok": true' "$1"; then echo true; else echo false; fi; }
# server_field FILE FAMILY KEY — digs the daemon-side summary the
# loadgen scraped into the report's "server" section.
server_field() {
    python3 - "$1" "$2" "$3" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
streams = (rep.get("server") or {}).get("streams") or {}
vals = [s[sys.argv[2]][sys.argv[3]] for s in streams.values() if sys.argv[2] in s]
print(round(max(vals), 4) if vals else "null")
EOF
}

on_rps=$(field "$tmp/on.json" records_per_sec)
off_rps=$(field "$tmp/off.json" records_per_sec)
overhead=$(awk -v on="$on_rps" -v off="$off_rps" \
    'BEGIN { if (off + 0 > 0) printf "%.2f", (off - on) / off * 100; else print "null" }')

{
    echo "{"
    echo "  \"suite\": \"pr7-telemetry-overhead\","
    echo "  \"description\": \"cmd/influtrack-loadgen against a spawned influtrackd (-wal-fsync always, 8 concurrent ingesters, 100-record batches): full record-lifecycle tracing + latency histograms (default) vs -trace=false. overhead_pct is the throughput cost of telemetry; server_* are the daemon's own /metrics summaries scraped into the loadgen report, set against the client-observed latencies.\","
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"duration\": \"$dur\","
    echo "  \"baseline_pr6_always_sharded_rps\": 3415,"
    for run in on off; do
        f="$tmp/$run.json"
        echo "  \"trace_$run\": {"
        echo "    \"records_per_sec\": $(field "$f" records_per_sec),"
        echo "    \"ingest_p50_ms\": $(field "$f" p50_ms),"
        echo "    \"ingest_p99_ms\": $(field "$f" p99_ms),"
        echo "    \"ingest_p999_ms\": $(field "$f" p999_ms),"
        echo "    \"verify_ok\": $(okflag "$f")"
        echo "  },"
    done
    echo "  \"server\": {"
    echo "    \"ingest_p50_ms\": $(server_field "$tmp/on.json" ingest p50_ms),"
    echo "    \"ingest_p99_ms\": $(server_field "$tmp/on.json" ingest p99_ms),"
    echo "    \"wal_commit_p99_ms\": $(server_field "$tmp/on.json" wal_commit p99_ms),"
    echo "    \"worker_batch_p99_ms\": $(server_field "$tmp/on.json" worker_batch p99_ms)"
    echo "  },"
    echo "  \"overhead_pct\": $overhead"
    echo "}"
} > "$out"

echo "wrote $out"
