#!/usr/bin/env bash
# bench_pr2.sh [output.json] [benchtime]
#
# Measures end-to-end ingest throughput of the serving layer
# (internal/server): HTTP POST → NDJSON decode → bounded queue → worker →
# tracker feed, fully processed. Records interactions/sec for the Sieve
# tracker on brightkite (the headline number the PR-2 acceptance gate
# checks: ≥ 100k interactions/sec), the tracker-bound twitter-higgs worst
# case, and HISTAPPROX for the trajectory. Default output is
# BENCH_PR2.json; benchtime defaults to 5x (pass e.g. "2x" for a faster
# smoke run in CI).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR2.json}"
benchtime="${2:-5x}"
pattern='BenchmarkIngestHTTPSieve$|BenchmarkIngestHTTPSieveHiggs$|BenchmarkIngestHTTPHistApprox$'

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test ./internal/server -run '^$' \
  -bench "$pattern" -benchtime "$benchtime" -count 1 | tee "$raw"

{
    echo "{"
    echo "  \"suite\": \"pr2-serving-layer-ingest\","
    echo "  \"description\": \"End-to-end ingest throughput through the internal/server HTTP serving layer (POST /v1/ingest, NDJSON, arrival-time streams), counting only fully tracker-processed interactions. sieve_brightkite is the acceptance number (>= 100k interactions/sec for the Sieve tracker).\","
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"benchtime\": \"$benchtime\","
    awk '/^cpu:/ { sub(/^cpu: */, ""); printf "  \"cpu\": \"%s\",\n", $0; exit }' "$raw"
    echo "  \"benchmarks\": ["
    awk '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ips = "null"
        for (i = 3; i < NF; i++) {
            if ($(i + 1) == "interactions/sec") ips = $i
        }
        if (n++) printf ",\n"
        printf "    {\"name\": \"%s\", \"iters\": %s, \"interactions_per_sec\": %s}", name, $2, ips
    }
    END { printf "\n" }
    ' "$raw"
    echo "  ],"
    awk '
    /^BenchmarkIngestHTTPSieve-/ || /^BenchmarkIngestHTTPSieve / {
        for (i = 3; i < NF; i++) if ($(i + 1) == "interactions/sec") v = $i
    }
    END { printf "  \"ingest_throughput_sieve_interactions_per_sec\": %s\n", (v == "" ? "null" : v) }
    ' "$raw"
    echo "}"
} > "$out"

echo "wrote $out"
