#!/usr/bin/env bash
# bench_pr9.sh [output.json] [duration] [gate_pct]
#
# Two-part benchmark for the PR-9 quality auditor.
#
# Part 1 — overhead: the same -wal-fsync always, 8-concurrent-ingester
# serving run as BENCH_PR7/PR8, once with the background auditor on a
# deliberately tight 2s cadence and once with -audit-interval 0.
# overhead_pct = (off - on) / off * 100; the audit's oracle BFS runs on
# the serving worker goroutine, so this bounds what continuous quality
# auditing costs the hot path. Gate: <= gate_pct (default 2). CI smoke
# runs pass a looser gate — short runs put run-to-run throughput noise
# above the signal; the 2% figure is asserted at the default 20s.
#
# Part 2 — quality figures: seeded 2-shard sieveadn streams over
# synthetic brightkite and twitter-higgs interactions. The deep
# GET /v1/streams/{s}/quality runs an on-demand audit with a generous
# -audit-budget (the reference greedy completes, so quality_ratio is
# against the true CELF greedy, not a truncated scan) and reports the
# cross-shard merge gap; the cached /metrics gauges are cross-checked
# against the same audit. Gates: brightkite quality_ratio >= 0.8 and a
# finite positive merge-gap ratio on both surfaces (1.0 = merge score
# exact; <1 double-counted overlap, >1 missed cross-partition reach).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR9.json}"
dur="${2:-20s}"
gate="${3:-2}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/influtrackd" ./cmd/influtrackd
go build -o "$tmp/loadgen" ./cmd/influtrack-loadgen
go build -o "$tmp/datagen" ./cmd/datagen

# ---- Part 1: auditor overhead under the fsync-bound serving run ----

run_loadgen() { # report port daemon-extra-flags
    local report="$1" port="$2" extra="$3"
    rm -rf "$tmp/wal"
    "$tmp/loadgen" \
        -spawn "$tmp/influtrackd -addr 127.0.0.1:$port -wal-dir $tmp/wal -wal-fsync always $extra" \
        -addr "http://127.0.0.1:$port" \
        -streams 2 -queriers 2 -subscribers 2 -batch 100 \
        -ingesters 8 -duration "$dur" -settle 12m \
        -json "$report"
}

echo "== audit on: background auditor every 2s per stream"
run_loadgen "$tmp/on.json" 8190 "-audit-interval 2s"
echo "== audit off: -audit-interval 0"
run_loadgen "$tmp/off.json" 8191 "-audit-interval 0"

# field FILE KEY — first occurrence of a loadgen-report numeric field
# (pretty-printed, "key": 1.23); for the latency keys that is the
# client-side ingest histogram.
field() { grep -m1 -o "\"$2\": [0-9.]*" "$1" | grep -o '[0-9.]*$'; }
okflag() { if grep -q '"ok": true' "$1"; then echo true; else echo false; fi; }
# jfield FILE KEY — last occurrence of a compactly-encoded numeric
# field ("key":1.23, no space), as the daemon writes JSON. The history
# ring ends with the same on-demand audit "latest" carries, so whichever
# section the encoder renders last, the final match is the fresh audit.
jfield() { grep -o "\"$2\":[0-9.eE+-]*" "$1" | tail -1 | sed 's/^"[^"]*"://'; }

on_rps=$(field "$tmp/on.json" records_per_sec)
off_rps=$(field "$tmp/off.json" records_per_sec)
overhead=$(awk -v on="$on_rps" -v off="$off_rps" \
    'BEGIN { if (off + 0 > 0) printf "%.2f", (off - on) / off * 100; else print "null" }')

# ---- Part 2: quality + merge-gap figures on the paper's datasets ----

audit_stream() { # dataset port steps
    local ds="$1" port="$2" steps="$3"
    "$tmp/datagen" -dataset "$ds" -steps "$steps" > "$tmp/$ds.csv"
    "$tmp/influtrackd" -addr "127.0.0.1:$port" -audit-budget 2000000 \
        -stream "name=$ds,algo=sieveadn,k=10,eps=0.2,shards=2,lifetime=constant,window=100000,seed=7" \
        2> "$tmp/$ds.log" &
    local dpid=$!
    for i in $(seq 1 100); do
        curl -fs "http://127.0.0.1:$port/healthz" > /dev/null && break
        sleep 0.1
    done
    curl -fs -X POST -H 'Content-Type: text/csv' \
        --data-binary @"$tmp/$ds.csv" \
        "http://127.0.0.1:$port/v1/ingest?stream=$ds" > /dev/null
    for i in $(seq 1 300); do
        curl -fs "http://127.0.0.1:$port/v1/topk?stream=$ds" | grep -q "\"t\":$steps" && break
        sleep 0.1
    done
    # Deep on-demand audit (generous budget => exact reference), then the
    # metrics snapshot that now carries the same audit's cached gauges.
    curl -fs "http://127.0.0.1:$port/v1/streams/$ds/quality" > "$tmp/$ds.quality.json"
    curl -fs "http://127.0.0.1:$port/metrics" > "$tmp/$ds.metrics.txt"
    kill -TERM "$dpid" 2> /dev/null || true
    wait "$dpid" 2> /dev/null || true
}

steps=4000
audit_stream brightkite 8192 "$steps"
audit_stream twitter-higgs 8193 "$steps"

gauge() { # metrics-file family stream
    grep -m1 "^influtrackd_$2{stream=\"$3\"} " "$1" | awk '{print $2}'
}
gap_ratio() { # quality-json
    grep -o '"merge_gap":{[^}]*}' "$1" | tail -1 | grep -o '"ratio":[0-9.eE+-]*' | sed 's/.*://'
}

dataset_block() { # dataset  -> prints the JSON object body
    local ds="$1" q="$tmp/$1.quality.json" m="$tmp/$1.metrics.txt"
    echo "    \"steps\": $steps,"
    echo "    \"k\": $(jfield "$q" k),"
    echo "    \"served_value\": $(jfield "$q" served_value),"
    echo "    \"reference_value\": $(jfield "$q" reference_value),"
    echo "    \"quality_ratio\": $(jfield "$q" quality_ratio),"
    echo "    \"topk_jaccard\": $(jfield "$q" topk_jaccard),"
    echo "    \"kendall_tau\": $(jfield "$q" kendall_tau),"
    echo "    \"merge_gap_summed\": $(jfield "$q" summed_per_shard),"
    echo "    \"merge_gap_union\": $(jfield "$q" union_rescore),"
    echo "    \"merge_gap_ratio\": $(gap_ratio "$q"),"
    echo "    \"audit_oracle_calls\": $(jfield "$q" oracle_calls),"
    echo "    \"gauge_quality_ratio\": $(gauge "$m" quality_ratio "$ds"),"
    echo "    \"gauge_merge_gap_ratio\": $(gauge "$m" merge_gap_ratio "$ds")"
}

{
    echo "{"
    echo "  \"suite\": \"pr9-quality-audit\","
    echo "  \"description\": \"Part 1: cmd/influtrack-loadgen against a spawned influtrackd (-wal-fsync always, 8 concurrent ingesters, 100-record batches), background auditor on a 2s cadence vs -audit-interval 0; overhead_pct gated <= ${gate}%. Part 2: seeded 2-shard sieveadn streams over synthetic brightkite/twitter-higgs; on-demand audit with an exact (uncapped-in-practice) reference greedy reports quality_ratio and the cross-shard merge gap, cross-checked against the cached /metrics gauges.\","
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"duration\": \"$dur\","
    echo "  \"gate_pct\": $gate,"
    for run in on off; do
        f="$tmp/$run.json"
        echo "  \"audit_$run\": {"
        echo "    \"records_per_sec\": $(field "$f" records_per_sec),"
        echo "    \"ingest_p50_ms\": $(field "$f" p50_ms),"
        echo "    \"ingest_p99_ms\": $(field "$f" p99_ms),"
        echo "    \"ingest_p999_ms\": $(field "$f" p999_ms),"
        echo "    \"verify_ok\": $(okflag "$f")"
        echo "  },"
    done
    echo "  \"overhead_pct\": $overhead,"
    echo "  \"brightkite\": {"
    dataset_block brightkite
    echo "  },"
    echo "  \"twitter_higgs\": {"
    dataset_block twitter-higgs
    echo "  }"
    echo "}"
} > "$out"

echo "wrote $out"

awk -v o="$overhead" -v g="$gate" 'BEGIN {
    if (o + 0 > g + 0) { printf "audit overhead %.2f%% exceeds the %.2f%% gate\n", o, g; exit 1 }
    printf "audit overhead %.2f%% within the %.2f%% gate\n", o, g
}'

bk_ratio=$(jfield "$tmp/brightkite.quality.json" quality_ratio)
bk_gap=$(gap_ratio "$tmp/brightkite.quality.json")
bk_gap_gauge=$(gauge "$tmp/brightkite.metrics.txt" merge_gap_ratio brightkite)
awk -v r="$bk_ratio" -v gp="$bk_gap" -v gg="$bk_gap_gauge" 'BEGIN {
    if (r + 0 < 0.8)  { printf "brightkite quality_ratio %s under the 0.8 floor\n", r; exit 1 }
    if (gp + 0 <= 0)  { printf "brightkite merge_gap ratio %s not finite/positive\n", gp; exit 1 }
    if (gg + 0 <= 0)  { printf "brightkite merge_gap gauge %s not finite/positive\n", gg; exit 1 }
    printf "brightkite quality_ratio %s (floor 0.8), merge_gap ratio %s (gauge %s)\n", r, gp, gg
}'
