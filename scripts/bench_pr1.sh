#!/usr/bin/env bash
# bench_pr1.sh [output.json] [benchtime]
#
# Runs the PR-1 hot-path micro-benchmark set (influence oracle + sieve
# cloning/feeding) and writes the parsed results as JSON, so the perf
# trajectory of the dense-data-structure work is recorded per commit.
# Default output is BENCH_PR1.latest.json — deliberately NOT the curated
# BENCH_PR1.json, which holds the recorded before/after baseline of PR 1
# and should only be edited by hand. benchtime defaults to 1s (pass e.g.
# "10x" for a fast smoke run in CI).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR1.latest.json}"
benchtime="${2:-1s}"
pattern='BenchmarkMarginalGain|BenchmarkReachSetClone|BenchmarkReachSetContains|BenchmarkOracleUpdate|BenchmarkAffected|BenchmarkSieveClone|BenchmarkSieveCloneFeed|BenchmarkSieveFeed|BenchmarkHistApproxStep'

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test ./internal/influence/ ./internal/core/ -run '^$' \
  -bench "$pattern" -benchtime "$benchtime" -count 1 | tee "$raw"

{
    echo "{"
    echo "  \"suite\": \"pr1-dense-hot-path\","
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"benchtime\": \"$benchtime\","
    awk '/^cpu:/ { sub(/^cpu: */, ""); printf "  \"cpu\": \"%s\",\n", $0; exit }' "$raw"
    echo "  \"benchmarks\": ["
    awk '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        bytes = "null"; allocs = "null"
        for (i = 4; i < NF; i++) {
            if ($(i + 1) == "B/op") bytes = $i
            if ($(i + 1) == "allocs/op") allocs = $i
        }
        if (n++) printf ",\n"
        printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
            name, $2, $3, bytes, allocs
    }
    END { printf "\n" }
    ' "$raw"
    echo "  ]"
    echo "}"
} > "$out"

echo "wrote $out"
