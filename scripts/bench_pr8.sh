#!/usr/bin/env bash
# bench_pr8.sh [output.json] [duration] [gate_pct]
#
# Measures what the PR-8 engine introspection costs: the same
# -wal-fsync always, 8-concurrent-ingester serving run as BENCH_PR7,
# once with the per-publish engine-stats refresh on (default) and once
# with -engine-stats=false.
#
#   * stats_on / stats_off: records/sec and ingest latency percentiles;
#   * overhead_pct: (off - on) / off * 100 — the acceptance gate is
#     <= 1% against the full-introspection run (the walk piggybacks on
#     snapshot publish, so an fsync-bound run barely notices it).
#
# The gate is enforced: overhead above gate_pct (default 1) fails the
# script. CI smoke runs pass a looser gate — short runs put normal
# run-to-run throughput noise above the real signal; the 1% figure is
# asserted at the default 20s duration.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR8.json}"
dur="${2:-20s}"
gate="${3:-1}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/influtrackd" ./cmd/influtrackd
go build -o "$tmp/loadgen" ./cmd/influtrack-loadgen

run_loadgen() { # report port daemon-extra-flags
    local report="$1" port="$2" extra="$3"
    rm -rf "$tmp/wal"
    "$tmp/loadgen" \
        -spawn "$tmp/influtrackd -addr 127.0.0.1:$port -wal-dir $tmp/wal -wal-fsync always $extra" \
        -addr "http://127.0.0.1:$port" \
        -streams 2 -queriers 2 -subscribers 2 -batch 100 \
        -ingesters 8 -duration "$dur" -settle 6m \
        -json "$report"
}

echo "== engine stats on (default): per-publish introspection refresh + gauges"
run_loadgen "$tmp/on.json" 8188 ""
echo "== engine stats off: -engine-stats=false"
run_loadgen "$tmp/off.json" 8189 "-engine-stats=false"

# field FILE KEY — first occurrence wins, which for the latency keys is
# the client-side ingest histogram (it precedes the query one).
field() { grep -m1 -o "\"$2\": [0-9.]*" "$1" | grep -o '[0-9.]*$'; }
okflag() { if grep -q '"ok": true' "$1"; then echo true; else echo false; fi; }

on_rps=$(field "$tmp/on.json" records_per_sec)
off_rps=$(field "$tmp/off.json" records_per_sec)
overhead=$(awk -v on="$on_rps" -v off="$off_rps" \
    'BEGIN { if (off + 0 > 0) printf "%.2f", (off - on) / off * 100; else print "null" }')

{
    echo "{"
    echo "  \"suite\": \"pr8-engine-introspection-overhead\","
    echo "  \"description\": \"cmd/influtrack-loadgen against a spawned influtrackd (-wal-fsync always, 8 concurrent ingesters, 100-record batches): per-publish engine-stats refresh (default) vs -engine-stats=false. overhead_pct is the throughput cost of the walk-the-structures accountant behind the influtrackd_engine_* gauges; the gate is <= ${gate}%.\","
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"duration\": \"$dur\","
    echo "  \"gate_pct\": $gate,"
    for run in on off; do
        f="$tmp/$run.json"
        echo "  \"stats_$run\": {"
        echo "    \"records_per_sec\": $(field "$f" records_per_sec),"
        echo "    \"ingest_p50_ms\": $(field "$f" p50_ms),"
        echo "    \"ingest_p99_ms\": $(field "$f" p99_ms),"
        echo "    \"ingest_p999_ms\": $(field "$f" p999_ms),"
        echo "    \"verify_ok\": $(okflag "$f")"
        echo "  },"
    done
    echo "  \"overhead_pct\": $overhead"
    echo "}"
} > "$out"

echo "wrote $out"
awk -v o="$overhead" -v g="$gate" 'BEGIN {
    if (o + 0 > g + 0) { printf "engine-stats overhead %.2f%% exceeds the %.2f%% gate\n", o, g; exit 1 }
    printf "engine-stats overhead %.2f%% within the %.2f%% gate\n", o, g
}'
