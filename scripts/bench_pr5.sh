#!/usr/bin/env bash
# bench_pr5.sh [output.json] [benchtime]
#
# Measures the internal/wal write-ahead log on the serving layer's
# ingest path:
#
#   * end-to-end HTTP ingest throughput with the WAL live under each
#     fsync policy — none / interval / always — against the WAL-free
#     figure recorded in BENCH_PR4.json (BenchmarkIngestHTTPSieve, the
#     same brightkite sieve workload);
#   * crash-recovery replay speed (BenchmarkWALReplay: rebuild a
#     50k-record stream from its log at boot).
#
# The PR-5 acceptance gate: ratio_vs_pr4_interval >= 0.85 — the default
# fsync policy must keep at least 85% of the WAL-free ingest
# throughput, because the log costs one buffered-free write(2) per
# chunk and its fsyncs ride a background interval, not the ack path.
# Default benchtime is 3x (pass "1x" for a CI smoke run). Each bench
# runs -count 3 and the best run is recorded: on shared boxes the
# co-tenant noise is one-sided (it only slows you down), so max-of-N is
# the least-biased estimate of what the code path actually costs.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR5.json}"
benchtime="${2:-3x}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# BenchmarkIngestHTTPSieve (the WAL-free path, unchanged since PR 4)
# runs in the same session: ratio_vs_plain_same_run factors the host's
# noise-of-the-day out of the WAL-cost measurement, alongside the
# ratios against the figure recorded in BENCH_PR4.json.
go test ./internal/server -run '^$' \
  -bench 'BenchmarkIngestHTTPSieve$|BenchmarkIngestHTTPSieveWALNone$|BenchmarkIngestHTTPSieveWALInterval$|BenchmarkIngestHTTPSieveWALAlways$|BenchmarkWALReplay$' \
  -benchtime "$benchtime" -count 3 | tee "$raw"

# WAL-free baseline recorded by scripts/bench_pr4.sh (null when absent).
pr4_sieve=null
if [ -f BENCH_PR4.json ]; then
    pr4_sieve=$(grep -o '"ingest_sieve_interactions_per_sec": [0-9.]*' BENCH_PR4.json | grep -o '[0-9.]*$' || echo null)
fi

{
    echo "{"
    echo "  \"suite\": \"pr5-wal-durability\","
    echo "  \"description\": \"internal/wal write-ahead log: end-to-end HTTP ingest throughput (brightkite sieve workload) with the log on the ack path under fsync none/interval/always, plus crash-recovery replay speed. Acceptance: ratio_vs_pr4_interval >= 0.85 — exact crash recovery must cost the default ingest path at most 15%.\","
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"benchtime\": \"$benchtime\","
    awk '/^cpu:/ { sub(/^cpu: */, ""); printf "  \"cpu\": \"%s\",\n", $0; exit }' "$raw"
    echo "  \"benchmarks\": ["
    awk '
    function metric(unit,   v, i) {
        v = ""
        for (i = 3; i < NF; i++) if ($(i + 1) == unit) v = $i
        return v
    }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
        iters[name] = $2
        ips = metric("interactions/sec")
        if (ips != "" && ips + 0 > best[name] + 0) best[name] = ips
    }
    END {
        for (i = 1; i <= n; i++) {
            name = order[i]
            printf "%s    {\"name\": \"%s\", \"iters\": %s", (i > 1 ? ",\n" : ""), name, iters[name]
            if (best[name] != "") printf ", \"interactions_per_sec\": %s", best[name]
            printf "}"
        }
        printf "\n"
    }
    ' "$raw"
    echo "  ],"
    awk -v pr4_sieve="$pr4_sieve" '
    function metric(unit,   v, i) {
        v = ""
        for (i = 3; i < NF; i++) if ($(i + 1) == unit) v = $i
        return v
    }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        v = metric("interactions/sec")
        if (v == "") next
        if (name == "BenchmarkIngestHTTPSieve"            && v + 0 > plain + 0)    plain = v
        if (name == "BenchmarkIngestHTTPSieveWALNone"     && v + 0 > none + 0)     none = v
        if (name == "BenchmarkIngestHTTPSieveWALInterval" && v + 0 > interval + 0) interval = v
        if (name == "BenchmarkIngestHTTPSieveWALAlways"   && v + 0 > always + 0)   always = v
        if (name == "BenchmarkWALReplay"                  && v + 0 > replay + 0)   replay = v
    }
    function num(v) { return (v == "" ? "null" : v) }
    function ratio(v, base) {
        if (v != "" && base != "" && base != "null" && base + 0 > 0)
            return sprintf("%.3f", v / base)
        return "null"
    }
    END {
        printf "  \"ingest_plain_same_run_interactions_per_sec\": %s,\n", num(plain)
        printf "  \"ingest_wal_none_interactions_per_sec\": %s,\n", num(none)
        printf "  \"ingest_wal_interval_interactions_per_sec\": %s,\n", num(interval)
        printf "  \"ingest_wal_always_interactions_per_sec\": %s,\n", num(always)
        printf "  \"wal_replay_interactions_per_sec\": %s,\n", num(replay)
        printf "  \"pr4_baseline_sieve_interactions_per_sec\": %s,\n", pr4_sieve
        printf "  \"ratio_vs_plain_same_run_interval\": %s,\n", ratio(interval, plain)
        printf "  \"ratio_vs_plain_same_run_always\": %s,\n", ratio(always, plain)
        printf "  \"ratio_vs_pr4_none\": %s,\n", ratio(none, pr4_sieve)
        printf "  \"ratio_vs_pr4_interval\": %s,\n", ratio(interval, pr4_sieve)
        printf "  \"ratio_vs_pr4_always\": %s\n", ratio(always, pr4_sieve)
    }
    ' "$raw"
    echo "}"
} > "$out"

echo "wrote $out"
